#include "common/failpoint.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <ostream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/mutex.hh"

namespace highlight
{

namespace
{

enum class Action
{
    Error,
    Crash,
    CrashAtByte,
    Delay,
    Hang,
};

struct Site
{
    std::string name;
    Action action = Action::Error;
    std::uint64_t arg = 0;    ///< Delay: ms; CrashAtByte: byte limit.
    long long remaining = -1; ///< Error: hits left; -1 = unlimited.
};

struct Registry
{
    Mutex mu;
    std::vector<Site> sites GUARDED_BY(mu);
    /** -1 env not parsed yet, 0 disarmed, 1 at least one site armed. */
    std::atomic<int> state{-1};
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/** Strict digits-only u64 (same rigor as env.hh, but 0 is legal:
 *  crash-at-byte:0 is "crash before the first byte"). */
bool
parseU64(const std::string &s, std::uint64_t *out)
{
    if (s.empty())
        return false;
    std::uint64_t v = 0;
    for (const char ch : s) {
        if (ch < '0' || ch > '9')
            return false;
        const std::uint64_t digit = static_cast<std::uint64_t>(ch - '0');
        if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            return false;
        v = v * 10 + digit;
    }
    *out = v;
    return true;
}

/** Parse one "site:action[:arg]" clause; false on any malformation. */
bool
parseClause(const std::string &clause, Site *out)
{
    std::vector<std::string> tokens;
    std::size_t begin = 0;
    while (begin <= clause.size()) {
        const std::size_t colon = clause.find(':', begin);
        if (colon == std::string::npos) {
            tokens.push_back(clause.substr(begin));
            break;
        }
        tokens.push_back(clause.substr(begin, colon - begin));
        begin = colon + 1;
    }
    if (tokens.size() < 2 || tokens[0].empty())
        return false;

    out->name = tokens[0];
    const std::string &action = tokens[1];
    if (action == "error") {
        out->action = Action::Error;
        out->remaining = -1;
        if (tokens.size() == 2)
            return true;
        std::uint64_t count = 0;
        if (tokens.size() != 3 || !parseU64(tokens[2], &count) ||
            count == 0 ||
            count > static_cast<std::uint64_t>(
                        std::numeric_limits<long long>::max()))
            return false;
        out->remaining = static_cast<long long>(count);
        return true;
    }
    if (action == "crash") {
        out->action = Action::Crash;
        return tokens.size() == 2;
    }
    if (action == "crash-at-byte") {
        out->action = Action::CrashAtByte;
        return tokens.size() == 3 && parseU64(tokens[2], &out->arg);
    }
    if (action == "delay") {
        out->action = Action::Delay;
        return tokens.size() == 3 && parseU64(tokens[2], &out->arg);
    }
    if (action == "hang") {
        out->action = Action::Hang;
        return tokens.size() == 2;
    }
    return false;
}

void
parseEnvLocked(Registry &r) REQUIRES(r.mu)
{
    r.sites.clear();
    const std::string spec = stringFromEnv("HIGHLIGHT_FAILPOINTS");
    if (!spec.empty()) {
        std::size_t begin = 0;
        while (begin <= spec.size()) {
            const std::size_t comma = spec.find(',', begin);
            const std::string clause =
                comma == std::string::npos
                    ? spec.substr(begin)
                    : spec.substr(begin, comma - begin);
            Site site;
            if (parseClause(clause, &site))
                r.sites.push_back(std::move(site));
            else if (!clause.empty())
                warn(msgOf("failpoint: ignoring malformed clause \"",
                           clause, "\" in HIGHLIGHT_FAILPOINTS"));
            if (comma == std::string::npos)
                break;
            begin = comma + 1;
        }
    }
    r.state.store(r.sites.empty() ? 0 : 1, std::memory_order_release);
}

/** Announce a process-killing action on stderr before it happens —
 *  the supervisor and ctest logs need to attribute the death. */
void
announce(const char *site, const char *what)
{
    std::fprintf(stderr, "failpoint: %s: %s\n", site, what);
    std::fflush(nullptr);
}

} // namespace

bool
failpointsArmed()
{
    Registry &r = registry();
    int state = r.state.load(std::memory_order_acquire);
    if (state < 0) {
        MutexLock lock(r.mu);
        state = r.state.load(std::memory_order_relaxed);
        if (state < 0) {
            parseEnvLocked(r);
            state = r.state.load(std::memory_order_relaxed);
        }
    }
    return state == 1;
}

FailpointHit
failpointHit(const char *site)
{
    if (!failpointsArmed())
        return FailpointHit{};

    Registry &r = registry();
    Action action;
    std::uint64_t arg = 0;
    {
        MutexLock lock(r.mu);
        Site *found = nullptr;
        for (Site &s : r.sites) {
            if (s.name == site) {
                found = &s;
                break;
            }
        }
        if (found == nullptr)
            return FailpointHit{};
        if (found->action == Action::Error) {
            if (found->remaining == 0)
                return FailpointHit{}; // counted fault already spent
            if (found->remaining > 0)
                --found->remaining;
            return FailpointHit{FailpointHit::Kind::Error, 0};
        }
        action = found->action;
        arg = found->arg;
    }

    switch (action) {
      case Action::Crash:
        announce(site, "crashing");
        ::_exit(kFailpointCrashExit);
      case Action::CrashAtByte:
        return FailpointHit{FailpointHit::Kind::CrashAtByte, arg};
      case Action::Delay:
        std::this_thread::sleep_for(std::chrono::milliseconds(arg));
        return FailpointHit{};
      case Action::Hang:
        announce(site, "hanging until killed");
        for (;;)
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
      case Action::Error:
        break; // handled under the lock above
    }
    return FailpointHit{};
}

bool
failpointFails(const char *site)
{
    return failpointHit(site).kind == FailpointHit::Kind::Error;
}

bool
failpointGuardedWrite(std::ostream &out, const std::string &bytes,
                      const char *site)
{
    const FailpointHit hit = failpointHit(site);
    if (hit.kind == FailpointHit::Kind::Error)
        return false;
    if (hit.kind == FailpointHit::Kind::CrashAtByte) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(hit.byte_limit, bytes.size()));
        out.write(bytes.data(), static_cast<std::streamsize>(n));
        out.flush();
        announce(site, "crashing mid-write");
        ::_exit(kFailpointCrashExit);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

void
failpointsReset()
{
    Registry &r = registry();
    MutexLock lock(r.mu);
    r.sites.clear();
    r.state.store(-1, std::memory_order_release);
}

} // namespace highlight
