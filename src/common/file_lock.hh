/**
 * @file
 * RAII advisory lockfile for cross-process critical sections.
 *
 * The classic shared-persistent-memo problem (ccache-style object
 * stores, build caches): N independent processes flush one on-disk
 * table, and an unlocked read-merge-write turns into last-writer-wins
 * data loss. FileLock serializes those flushes with an advisory
 * lockfile next to the protected path:
 *
 *  - The lock is *claimed* by creating the lockfile with
 *    `open(O_CREAT|O_EXCL)` — atomic on POSIX filesystems — and
 *    stamping the holder's pid into it.
 *  - The creator additionally holds `flock(LOCK_EX)` on the open fd.
 *    The flock dies with the process, which is what makes stale-lock
 *    takeover race-free: a would-be stealer must first win the flock
 *    on the *existing* lockfile's inode before it may unlink it, so
 *    two stealers can never both "clean up" and both think they own
 *    the lock.
 *  - Staleness is decided by pid liveness: a lockfile whose recorded
 *    pid no longer exists (`kill(pid, 0)` -> ESRCH) was left behind
 *    by a crashed holder and is taken over; a live holder's lock is
 *    never stolen.
 *  - acquire() retries with bounded exponential backoff; contention
 *    past the bound fails (returns false) rather than blocking
 *    forever or clobbering unlocked.
 *
 * The destructor releases a held lock, so an exception thrown inside
 * the critical section cannot leak the lockfile (a crash can, but
 * that is exactly what the stale-pid takeover handles).
 */

#ifndef HIGHLIGHT_COMMON_FILE_LOCK_HH
#define HIGHLIGHT_COMMON_FILE_LOCK_HH

#include <chrono>
#include <string>

#include "common/thread_annotations.hh"

namespace highlight
{

/** True when `pid` names a live process (kill(pid, 0) succeeds, or
 *  fails with EPERM — which still proves liveness). The staleness
 *  test behind lockfile takeover and orphaned-temp-file sweeps. */
bool pidAlive(long pid);

/** Retry policy for FileLock::acquire(). */
struct FileLockConfig
{
    /** Claim attempts before giving up (>= 1). */
    int max_attempts = 200;

    /** Sleep after the first failed attempt; doubles per retry. */
    std::chrono::milliseconds initial_backoff{1};

    /** Backoff ceiling (total worst-case wait ~ max_attempts * max). */
    std::chrono::milliseconds max_backoff{50};
};

/**
 * One advisory lockfile. Movable-from-nothing: each instance either
 * holds its lock or does not; copying is disabled.
 *
 * Annotation note: the class is declared a CAPABILITY so the type
 * reads as a lock in call signatures, but acquire()/release() are
 * deliberately *not* ACQUIRE/RELEASE-annotated. Clang's analysis
 * cannot soundly model this discipline: acquire() is fallible (the
 * caller branches on the result, which only TRY_ACQUIRE on a scoped
 * type expresses), the destructor conditionally releases only when
 * held, and the capability guards cross-process file state rather
 * than any member the analysis could track. Mis-annotating would
 * produce warnings on every correct call site and silence on the
 * incorrect ones. The locking protocol is instead covered dynamically
 * by test_lock's two-process stampede tests.
 */
class CAPABILITY("filelock") FileLock
{
  public:
    /** Does not acquire; `path` is the lockfile itself (see
     *  lockPathFor for the conventional name next to a protected
     *  file). */
    explicit FileLock(std::string path);

    /** Releases if held. */
    ~FileLock();

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    /**
     * One claim attempt (create-exclusive, else stale takeover).
     * Returns true iff the lock is now held. No sleeping.
     */
    bool tryAcquire();

    /**
     * tryAcquire() with bounded retry + exponential backoff on
     * contention. Non-contention errors (e.g. the lock directory does
     * not exist) fail immediately — retrying cannot fix them.
     */
    bool acquire(const FileLockConfig &config = FileLockConfig());

    /** Unlink + close; no-op when not held. */
    void release();

    bool held() const { return fd_ >= 0; }

    const std::string &path() const { return path_; }

    /** Conventional lockfile name protecting `target`: target.lock. */
    static std::string lockPathFor(const std::string &target);

  private:
    /** Claim by O_CREAT|O_EXCL; true on success. Sets contended_. */
    bool claim();

    /** Remove an existing lockfile iff its recorded pid is dead,
     *  under flock on its inode (see file comment for the race). */
    void takeOverIfStale();

    std::string path_;
    int fd_ = -1;
    /** Last claim() failure was EEXIST (retryable) vs a hard error. */
    bool contended_ = false;
};

} // namespace highlight

#endif // HIGHLIGHT_COMMON_FILE_LOCK_HH
