#include "common/file_lock.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/failpoint.hh"
#include "common/logging.hh"

namespace highlight
{

bool
pidAlive(long pid)
{
    if (pid <= 0)
        return false; // unparsable stamp: treat as a dead holder
    return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

namespace
{

/** The pid stamped into an open lockfile; -1 when unreadable. */
long
readPid(int fd)
{
    char buf[32];
    const ssize_t n = ::pread(fd, buf, sizeof(buf) - 1, 0);
    if (n <= 0)
        return -1;
    buf[n] = '\0';
    char *end = nullptr;
    const long pid = std::strtol(buf, &end, 10);
    if (end == buf)
        return -1;
    return pid;
}

} // namespace

FileLock::FileLock(std::string path) : path_(std::move(path)) {}

FileLock::~FileLock()
{
    release();
}

std::string
FileLock::lockPathFor(const std::string &target)
{
    return target + ".lock";
}

bool
FileLock::claim()
{
    contended_ = false;
    const int fd =
        ::open(path_.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) {
        contended_ = errno == EEXIST;
        return false;
    }
    // The flock backs the stale-takeover protocol: it evaporates if
    // this process dies, letting a stealer prove the file is orphaned.
    // With O_EXCL already won it cannot block.
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        ::close(fd);
        ::unlink(path_.c_str());
        return false;
    }
    const std::string stamp = msgOf(static_cast<long>(::getpid()), "\n");
    if (::write(fd, stamp.c_str(), stamp.size()) !=
        static_cast<ssize_t>(stamp.size())) {
        ::close(fd); // drops the flock
        ::unlink(path_.c_str());
        return false;
    }
    fd_ = fd;
    return true;
}

void
FileLock::takeOverIfStale()
{
    const int fd = ::open(path_.c_str(), O_RDWR);
    if (fd < 0)
        return; // already gone — the next claim() decides
    // A live holder keeps LOCK_EX on its fd, so winning this flock
    // proves the creating process is gone (or still mid-claim; the
    // pid check below separates the two). Only the flock winner may
    // unlink, so two stealers cannot both remove a fresh lock.
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        ::close(fd);
        return;
    }
    // Re-check identity: between our open() and flock() the holder
    // may have released (unlinked) and another process may have
    // created a brand-new lockfile. Unlinking by name would then
    // destroy the new holder's lock — only proceed when the name
    // still resolves to the inode we hold flocked.
    struct stat by_name, by_fd;
    if (::stat(path_.c_str(), &by_name) == 0 &&
        ::fstat(fd, &by_fd) == 0 &&
        by_name.st_ino == by_fd.st_ino &&
        by_name.st_dev == by_fd.st_dev && !pidAlive(readPid(fd))) {
        warn(msgOf("FileLock: removing stale lock ", path_,
                   " (holder pid ", readPid(fd), " is gone)"));
        ::unlink(path_.c_str());
    }
    ::close(fd);
}

bool
FileLock::tryAcquire()
{
    if (held())
        return true;
    if (claim())
        return true;
    if (!contended_)
        return false;
    takeOverIfStale();
    return claim();
}

bool
FileLock::acquire(const FileLockConfig &config)
{
    // Failpoint "filelock-acquire": fail (or crash/delay/hang) here
    // to exercise every "could not lock" path — cache flushes that
    // must report Failed, retry loops, supervisor degradation —
    // without manufacturing real cross-process contention.
    if (failpointFails("filelock-acquire"))
        return false;
    auto backoff = config.initial_backoff;
    for (int attempt = 0; attempt < config.max_attempts; ++attempt) {
        if (tryAcquire())
            return true;
        if (!contended_)
            return false; // ENOENT/EACCES/...: retrying cannot help
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, config.max_backoff);
    }
    return false;
}

void
FileLock::release()
{
    if (!held())
        return;
    // Unlink before close: we still hold the flock while the name
    // disappears, so no stealer can race the teardown.
    ::unlink(path_.c_str());
    ::close(fd_);
    fd_ = -1;
}

} // namespace highlight
