#include "common/random.hh"

#include <numeric>

#include "common/logging.hh"

namespace highlight
{

std::vector<std::size_t>
Rng::sampleIndices(std::size_t n, std::size_t k)
{
    if (k > n)
        panic(msgOf("sampleIndices: k=", k, " > n=", n));
    std::vector<std::size_t> pool(n);
    std::iota(pool.begin(), pool.end(), std::size_t{0});
    // Partial Fisher-Yates: after i swaps the first i entries are a
    // uniform random k-subset prefix.
    for (std::size_t i = 0; i < k; ++i) {
        const auto j =
            static_cast<std::size_t>(uniformInt(static_cast<std::int64_t>(i),
                static_cast<std::int64_t>(n - 1)));
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

} // namespace highlight
