/**
 * @file
 * Deterministic fault injection ("failpoints").
 *
 * Recovery code is only trustworthy when its failure paths run in CI,
 * and real crashes, hung processes, and torn writes do not happen on
 * demand. A failpoint is a named site in a recovery-critical path
 * (cache flush, artifact write, lock acquire, shard startup) that can
 * be armed from the environment to fail in a *chosen, deterministic*
 * way:
 *
 *   HIGHLIGHT_FAILPOINTS=site:action[:arg][,site:action[:arg]...]
 *
 * Actions:
 *   error[:N]        The guarded operation reports failure (the first
 *                    N hits only when :N is given, then the site
 *                    disarms — this is how "transient" faults are
 *                    modeled for retry tests).
 *   crash            _exit(kFailpointCrashExit) at the site: a process
 *                    death with no destructors, no flushes.
 *   crash-at-byte:N  For write sites: emit exactly N bytes of the
 *                    payload, flush them, then _exit — a torn write,
 *                    the on-disk state a power cut leaves behind.
 *   delay:MS         Sleep MS milliseconds at the site (races,
 *                    timeout tuning).
 *   hang             Sleep forever; only SIGKILL ends the process
 *                    (exercises supervisor watchdog timeouts).
 *
 * Malformed clauses warn and are ignored; unknown site names are
 * simply never hit. When HIGHLIGHT_FAILPOINTS is unset the whole
 * subsystem is a single relaxed atomic load per site visit — the
 * sites live in I/O and process-management paths, never in compute
 * kernels.
 *
 * The environment is parsed once, on the first site visit, so a
 * process's fault plan is fixed at first use (deterministic across
 * threads); failpointsReset() re-arms from the current environment
 * for tests that change it.
 */

#ifndef HIGHLIGHT_COMMON_FAILPOINT_HH
#define HIGHLIGHT_COMMON_FAILPOINT_HH

#include <cstdint>
#include <iosfwd>
#include <string>

namespace highlight
{

/**
 * Exit code of the `crash` / `crash-at-byte` actions. Distinct from
 * every exit code the drivers use (0/1/2/3) and from fatal-signal
 * statuses, so a supervisor log can tell an injected crash from an
 * organic failure.
 */
constexpr int kFailpointCrashExit = 86;

/** Outcome of consulting a site. Side-effectful actions (crash,
 *  delay, hang) never return in a way the caller must handle; only
 *  the two actions the *caller* executes are reported. */
struct FailpointHit
{
    enum class Kind
    {
        None,        ///< Site disarmed; proceed normally.
        Error,       ///< Make the guarded operation fail.
        CrashAtByte, ///< Write `byte_limit` bytes, then _exit.
    };

    Kind kind = Kind::None;
    std::uint64_t byte_limit = 0; ///< CrashAtByte only.
};

/** True when HIGHLIGHT_FAILPOINTS armed at least one site. The
 *  disabled fast path is one atomic load. */
bool failpointsArmed();

/**
 * Consult site `site`. Executes `crash` (never returns), `delay`
 * (sleeps, then reports None) and `hang` (never returns) in place;
 * returns Error / CrashAtByte for the caller to act on.
 */
FailpointHit failpointHit(const char *site);

/** True when `site` is armed with `error` (consumes one hit of a
 *  counted `error:N`). The one-line guard for "return false here". */
bool failpointFails(const char *site);

/**
 * Write `bytes` to `out` through site `site`: `error` fails the write
 * without touching the stream, `crash-at-byte:N` writes exactly
 * min(N, bytes.size()) bytes, flushes, and _exits. Returns the stream
 * state after a full write. Disarmed, this is a plain write.
 */
bool failpointGuardedWrite(std::ostream &out, const std::string &bytes,
                           const char *site);

/** Drop all cached state and re-parse HIGHLIGHT_FAILPOINTS on the
 *  next site visit (tests that set/unset the variable mid-process). */
void failpointsReset();

} // namespace highlight

#endif // HIGHLIGHT_COMMON_FAILPOINT_HH
