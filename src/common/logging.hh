/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration, unsupported workload) and exits cleanly; panic() is for
 * internal invariant violations (library bugs) and aborts; warn() and
 * inform() are non-fatal status channels.
 */

#ifndef HIGHLIGHT_COMMON_LOGGING_HH
#define HIGHLIGHT_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace highlight
{

/** Thrown by fatal(): the caller supplied an invalid configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown by panic(): an internal invariant of the library was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/**
 * Report an unrecoverable user error (bad configuration, unsupported
 * workload). Throws FatalError so library users and tests can catch it.
 *
 * @param msg Description of what the user did wrong.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal invariant violation (a bug in this library, not a
 * user error). Throws PanicError.
 *
 * @param msg Description of the violated invariant.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Emit a non-fatal warning to stderr. Used when a model falls back to an
 * approximation that might surprise the user.
 */
void warn(const std::string &msg);

/** Emit an informational status message to stderr. */
void inform(const std::string &msg);

/** Enable/disable warn()/inform() output (on by default). */
void setVerbose(bool verbose);

/**
 * Build a message from streamable parts, e.g.
 * fatal(msgOf("H=", h, " is not in [", lo, ",", hi, "]")).
 */
template <typename... Args>
std::string
msgOf(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace highlight

#endif // HIGHLIGHT_COMMON_LOGGING_HH
