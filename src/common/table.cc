#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace highlight
{

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size())
        panic(msgOf("TextTable: row has ", row.size(), " cells, header has ",
                    header_.size()));
    rows_.push_back(std::move(row));
}

std::string
TextTable::fmt(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

void
TextTable::print(std::ostream &os) const
{
    // Column widths: max of header cell and each row cell.
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    auto emit = [&os, &widths](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cells[i];
        }
        os << "\n";
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ",";
            os << cells[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

namespace
{

/** A quoted JSON string (escapes backslash and double-quote). */
std::string
jsonCell(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
TextTable::printJson(std::ostream &os) const
{
    auto emitList = [&os](const std::vector<std::string> &cells) {
        os << "[";
        for (std::size_t i = 0; i < cells.size(); ++i)
            os << (i ? ", " : "") << jsonCell(cells[i]);
        os << "]";
    };
    os << "{\n  \"title\": " << jsonCell(title_) << ",\n  \"header\": ";
    emitList(header_);
    os << ",\n  \"rows\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << "    ";
        emitList(rows_[r]);
        os << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace highlight
