/**
 * @file
 * Annotated mutex primitives for the thread-safety analysis.
 *
 * libstdc++'s std::mutex / std::lock_guard carry no capability
 * attributes, so Clang's -Wthread-safety cannot see through them.
 * These are the thinnest possible wrappers that the analysis *can*
 * see through — the same idiom Abseil and Chromium use:
 *
 *   Mutex mu_;                  // the capability
 *   int x GUARDED_BY(mu_);      // compiler-enforced protection
 *   { MutexLock lock(mu_); ++x; }  // scoped acquire/release
 *
 * CondVar pairs with MutexLock the way std::condition_variable pairs
 * with std::unique_lock. Waits are written as explicit loops —
 * `while (!pred) cv.wait(lock);` — never with a predicate lambda:
 * the analysis treats a lambda as a separate unannotated function,
 * so guarded reads inside it would (correctly) fail to compile.
 *
 * Everything is a zero-cost veneer over the std primitives: the
 * wrappers add no state, no branches, and vanish at -O1.
 */

#ifndef HIGHLIGHT_COMMON_MUTEX_HH
#define HIGHLIGHT_COMMON_MUTEX_HH

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hh"

namespace highlight
{

/** An annotated std::mutex: the capability the analysis tracks. */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() ACQUIRE()
    {
        mu_.lock();
    }

    void
    unlock() RELEASE()
    {
        mu_.unlock();
    }

    bool
    tryLock() TRY_ACQUIRE(true)
    {
        return mu_.try_lock();
    }

  private:
    friend class MutexLock;
    std::mutex mu_;
};

/**
 * Scoped acquire/release of a Mutex — the only way the runtime takes
 * its locks, because a scoped capability is what the analysis can
 * prove released on every path (including exceptions).
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ACQUIRE(mu) : lock_(mu.mu_) {}

    ~MutexLock() RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
};

/**
 * Condition variable over a MutexLock. wait() atomically releases
 * the lock while sleeping and reacquires it before returning, so
 * from the analysis's point of view the capability is held across
 * the call — which is exactly the guarantee the caller observes.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Sleep until notified; the lock is held again on return. */
    void
    wait(MutexLock &lock)
    {
        cv_.wait(lock.lock_);
    }

    void
    notifyOne() noexcept
    {
        cv_.notify_one();
    }

    void
    notifyAll() noexcept
    {
        cv_.notify_all();
    }

  private:
    std::condition_variable cv_;
};

} // namespace highlight

#endif // HIGHLIGHT_COMMON_MUTEX_HH
