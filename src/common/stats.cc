#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace highlight
{

namespace
{

void
requireNonEmpty(const std::vector<double> &values, const char *who)
{
    if (values.empty())
        fatal(msgOf(who, ": empty sample"));
}

} // namespace

double
geomean(const std::vector<double> &values)
{
    requireNonEmpty(values, "geomean");
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal(msgOf("geomean: non-positive value ", v));
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    requireNonEmpty(values, "mean");
    const double sum = std::accumulate(values.begin(), values.end(), 0.0);
    return sum / static_cast<double>(values.size());
}

double
minOf(const std::vector<double> &values)
{
    requireNonEmpty(values, "minOf");
    return *std::min_element(values.begin(), values.end());
}

double
maxOf(const std::vector<double> &values)
{
    requireNonEmpty(values, "maxOf");
    return *std::max_element(values.begin(), values.end());
}

SampleSummary
summarize(const std::vector<double> &values)
{
    SampleSummary s;
    s.n = values.size();
    s.mean = mean(values);
    s.geomean = geomean(values);
    s.min = minOf(values);
    s.max = maxOf(values);
    return s;
}

double
binomialPmf(int n, int k, double p)
{
    if (k < 0 || k > n)
        return 0.0;
    if (p <= 0.0)
        return k == 0 ? 1.0 : 0.0;
    if (p >= 1.0)
        return k == n ? 1.0 : 0.0;
    // log C(n,k) via lgamma keeps the computation stable for large n.
    // lgamma_r, not std::lgamma: the latter writes the global signgam
    // and the evaluation runtime calls this from concurrent workers.
    const auto lgamma_ts = [](double x) {
        int sign = 0;
        return ::lgamma_r(x, &sign);
    };
    const double log_choose = lgamma_ts(n + 1.0) - lgamma_ts(k + 1.0) -
                              lgamma_ts(n - k + 1.0);
    const double log_pmf = log_choose + k * std::log(p) +
                           (n - k) * std::log1p(-p);
    return std::exp(log_pmf);
}

double
binomialExpectation(int n, double p, double (*f)(int, const void *),
                    const void *ctx)
{
    if (n < 0)
        panic("binomialExpectation: negative n");
    double acc = 0.0;
    for (int k = 0; k <= n; ++k)
        acc += binomialPmf(n, k, p) * f(k, ctx);
    return acc;
}

} // namespace highlight
