/**
 * @file
 * Plain-text table emitter.
 *
 * Every bench binary regenerates one of the paper's tables or figures as
 * rows of text; TextTable keeps the formatting consistent (aligned
 * columns, optional title, CSV export for plotting).
 */

#ifndef HIGHLIGHT_COMMON_TABLE_HH
#define HIGHLIGHT_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace highlight
{

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t("Fig 14: geomean metrics");
 *   t.setHeader({"design", "EDP", "energy", "latency"});
 *   t.addRow({"HighLight", "0.21", "0.39", "0.54"});
 *   t.print(std::cout);
 * @endcode
 */
class TextTable
{
  public:
    TextTable() = default;
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header's column count if set. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string fmt(double value, int precision = 3);

    /** Render the aligned table. */
    void print(std::ostream &os) const;

    /** Render as CSV (comma-separated, header first). */
    void printCsv(std::ostream &os) const;

    /**
     * Render as JSON: {"title": ..., "header": [...], "rows": [[...]]}.
     * Cells are already formatted strings, so two dumps byte-compare
     * equal iff the tabulated results are identical — the property the
     * driver smoke tests rely on to diff serial vs. parallel runs.
     */
    void printJson(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace highlight

#endif // HIGHLIGHT_COMMON_TABLE_HH
