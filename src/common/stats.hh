/**
 * @file
 * Small statistics helpers shared by the evaluation harness and benches.
 *
 * The paper reports geometric means across workloads (Fig 14) and
 * min/max factors ("up to 20.4x"), so those summaries live here.
 */

#ifndef HIGHLIGHT_COMMON_STATS_HH
#define HIGHLIGHT_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace highlight
{

/** Geometric mean of strictly positive values. Fatal on empty/non-pos. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. Fatal on empty input. */
double mean(const std::vector<double> &values);

/** Minimum element. Fatal on empty input. */
double minOf(const std::vector<double> &values);

/** Maximum element. Fatal on empty input. */
double maxOf(const std::vector<double> &values);

/**
 * Summary of a sample: n, mean, geomean, min, max.
 * Built once so benches can report consistent aggregates.
 */
struct SampleSummary
{
    std::size_t n = 0;
    double mean = 0.0;
    double geomean = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** Compute all SampleSummary fields for a strictly positive sample. */
SampleSummary summarize(const std::vector<double> &values);

/**
 * Exact expectation E[f(X)] for X ~ Binomial(n, p).
 *
 * Used by the DSTC workload-balance model (Sec 2.2.1: occupancy must be
 * a multiple of the compute-column width for perfect balance). n is
 * small (<= a few thousand) so the direct sum is fine.
 *
 * @param n Number of Bernoulli trials.
 * @param p Success probability.
 * @param f Function evaluated at each outcome k in [0, n].
 */
double binomialExpectation(int n, double p, double (*f)(int, const void *),
                           const void *ctx);

/** Probability mass P[X = k] for X ~ Binomial(n, p), computed stably. */
double binomialPmf(int n, int k, double p);

} // namespace highlight

#endif // HIGHLIGHT_COMMON_STATS_HH
