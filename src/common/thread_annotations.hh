/**
 * @file
 * Clang thread-safety ("capability") analysis annotations.
 *
 * These macros turn the repo's locking discipline into a
 * compiler-checked contract: a member declared `GUARDED_BY(mu_)` can
 * only be touched while `mu_` is held, a private helper declared
 * `REQUIRES(mu_)` can only be called with the lock already taken, and
 * `-Werror=thread-safety` (enabled for every Clang build in
 * CMakeLists.txt) turns a violation into a compile error instead of a
 * data race the TSan job may or may not catch. The macro set is the
 * standard one from Clang's thread-safety documentation; under
 * compilers without the attributes (GCC) every macro expands to
 * nothing, so the annotated code builds everywhere.
 *
 * The analysis only understands annotated lock types —
 * libstdc++'s std::mutex carries no capability attributes — so the
 * runtime locks through the annotated wrappers in common/mutex.hh
 * (`Mutex`, `MutexLock`, `CondVar`) rather than std::mutex directly.
 *
 * Conventions for new code:
 *  - every member a mutex protects is `GUARDED_BY(that_mutex)`;
 *  - every `*Locked()` helper that expects the caller to hold the
 *    lock is `REQUIRES(that_mutex)`;
 *  - lock acquisition is scoped (`MutexLock lock(mu_);`) — bare
 *    lock()/unlock() pairs are what the analyzer cannot prove;
 *  - condition-variable predicates are written as explicit
 *    `while (!pred) cv.wait(lock);` loops, because a predicate lambda
 *    is analyzed as a separate function that does not visibly hold
 *    the lock.
 *
 * tests/annotations/negative.cc (driven by the test_thread_annotations
 * ctest) proves the wiring is live: an unguarded write to a
 * GUARDED_BY member must *fail* to compile under Clang.
 */

#ifndef HIGHLIGHT_COMMON_THREAD_ANNOTATIONS_HH
#define HIGHLIGHT_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define HIGHLIGHT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HIGHLIGHT_THREAD_ANNOTATION
#define HIGHLIGHT_THREAD_ANNOTATION(x) // no-op without the analysis
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define CAPABILITY(x) HIGHLIGHT_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type whose constructor acquires and destructor
 *  releases a capability. */
#define SCOPED_CAPABILITY HIGHLIGHT_THREAD_ANNOTATION(scoped_lockable)

/** The member may only be accessed while holding capability `x`. */
#define GUARDED_BY(x) HIGHLIGHT_THREAD_ANNOTATION(guarded_by(x))

/** The pointed-to data may only be accessed while holding `x`. */
#define PT_GUARDED_BY(x) HIGHLIGHT_THREAD_ANNOTATION(pt_guarded_by(x))

/** The caller must hold the listed capabilities (not acquired here). */
#define REQUIRES(...) \
    HIGHLIGHT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Shared (reader) variant of REQUIRES. */
#define REQUIRES_SHARED(...) \
    HIGHLIGHT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** The function acquires the capability and holds it on return. */
#define ACQUIRE(...) \
    HIGHLIGHT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Shared (reader) variant of ACQUIRE. */
#define ACQUIRE_SHARED(...) \
    HIGHLIGHT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** The function releases a capability the caller holds. */
#define RELEASE(...) \
    HIGHLIGHT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Shared (reader) variant of RELEASE. */
#define RELEASE_SHARED(...) \
    HIGHLIGHT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** The function acquires the capability iff it returns `b`. */
#define TRY_ACQUIRE(b, ...) \
    HIGHLIGHT_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/** The caller must NOT hold the listed capabilities (deadlock guard
 *  for functions that acquire them internally). */
#define EXCLUDES(...) \
    HIGHLIGHT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is held (trusted by the
 *  analysis from this point on). */
#define ASSERT_CAPABILITY(x) \
    HIGHLIGHT_THREAD_ANNOTATION(assert_capability(x))

/** The function returns a reference to the given capability. */
#define RETURN_CAPABILITY(x) HIGHLIGHT_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: the function is not analyzed. Use only with a
 *  comment explaining why the discipline cannot be expressed. */
#define NO_THREAD_SAFETY_ANALYSIS \
    HIGHLIGHT_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // HIGHLIGHT_COMMON_THREAD_ANNOTATIONS_HH
