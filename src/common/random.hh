/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic pieces of the library (tensor generators, unstructured
 * sparsifiers, workload-balance sampling) draw from an explicitly seeded
 * Rng so every experiment in bench/ is exactly reproducible run-to-run.
 */

#ifndef HIGHLIGHT_COMMON_RANDOM_HH
#define HIGHLIGHT_COMMON_RANDOM_HH

#include <cstdint>
#include <random>
#include <vector>

namespace highlight
{

/**
 * A seeded pseudo-random source wrapping std::mt19937_64.
 *
 * The class exposes exactly the primitives the library needs so call
 * sites stay simple and the distribution objects are constructed in one
 * place.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed seed). */
    explicit Rng(std::uint64_t seed = 0x48534cu) : engine_(seed) {}

    /** Uniform double in [0, 1). */
    double uniform() { return unit_(engine_); }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> dist(lo, hi);
        return dist(engine_);
    }

    /** Standard normal sample scaled to the given mean/stddev. */
    double
    normal(double mean = 0.0, double stddev = 1.0)
    {
        std::normal_distribution<double> dist(mean, stddev);
        return dist(engine_);
    }

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p) { return uniform() < p; }

    /**
     * Choose k distinct indices out of n (partial Fisher-Yates).
     * Used by unstructured pruning to pick zero locations.
     */
    std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k);

    /** Access the underlying engine (for std::shuffle etc.). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
    std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

} // namespace highlight

#endif // HIGHLIGHT_COMMON_RANDOM_HH
