#include "common/env.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace highlight
{

bool
parsePositiveInt(const char *s, long long max_value, long long *out)
{
    if (s == nullptr || *s == '\0')
        return false;
    long long v = 0;
    for (const char *p = s; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return false; // sign, whitespace or trailing junk
        const int digit = *p - '0';
        if (v > (max_value - digit) / 10)
            return false; // would exceed max_value
        v = v * 10 + digit;
    }
    if (v < 1)
        return false;
    *out = v;
    return true;
}

long long
positiveIntFromEnv(const char *name, long long max_value,
                   long long fallback)
{
    const char *s = std::getenv(name);
    if (s == nullptr)
        return fallback;
    long long v = 0;
    if (parsePositiveInt(s, max_value, &v))
        return v;
    warn(msgOf(name, "=", s, " is not a positive integer (max ",
               max_value, "); falling back to the default"));
    return fallback;
}

} // namespace highlight
