#include "common/env.hh"

#include <cstdlib>
#include <string>
#include <string_view>

#include "common/logging.hh"

namespace highlight
{

bool
parsePositiveInt(const char *s, long long max_value, long long *out)
{
    if (s == nullptr || *s == '\0')
        return false;
    long long v = 0;
    for (const char *p = s; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return false; // sign, whitespace or trailing junk
        const int digit = *p - '0';
        if (v > (max_value - digit) / 10)
            return false; // would exceed max_value
        v = v * 10 + digit;
    }
    if (v < 1)
        return false;
    *out = v;
    return true;
}

long long
positiveIntFromEnv(const char *name, long long max_value,
                   long long fallback)
{
    const char *s = std::getenv(name);
    if (s == nullptr)
        return fallback;
    long long v = 0;
    if (parsePositiveInt(s, max_value, &v))
        return v;
    warn(msgOf(name, "=", s, " is not a positive integer (max ",
               max_value, "); falling back to the default"));
    return fallback;
}

int
parseChoice(const char *s, const char *const *choices, int count)
{
    if (s == nullptr || *s == '\0')
        return -1;
    for (int i = 0; i < count; ++i) {
        if (std::string_view(s) == choices[i])
            return i;
    }
    return -1;
}

int
choiceFromEnv(const char *name, const char *const *choices, int count,
              int fallback)
{
    const char *s = std::getenv(name);
    if (s == nullptr)
        return fallback;
    const int i = parseChoice(s, choices, count);
    if (i >= 0)
        return i;
    std::string accepted;
    for (int c = 0; c < count; ++c) {
        if (c > 0)
            accepted += "|";
        accepted += choices[c];
    }
    warn(msgOf(name, "=", s, " is not one of {", accepted,
               "}; falling back to the default"));
    return fallback;
}

std::string
stringFromEnv(const char *name)
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): getenv is only unsafe
    // against a concurrent setenv; the runtime never calls setenv
    // after main() starts (sharded_sweep mutates the environment only
    // in the single-threaded child between fork and exec).
    const char *s = std::getenv(name);
    return s == nullptr ? std::string() : std::string(s);
}

} // namespace highlight
