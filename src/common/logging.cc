#include "common/logging.hh"

#include <iostream>

namespace highlight
{

namespace
{
bool verboseEnabled = true;
} // namespace

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
warn(const std::string &msg)
{
    if (verboseEnabled)
        std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    if (verboseEnabled)
        std::cerr << "info: " << msg << "\n";
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

} // namespace highlight
