/**
 * @file
 * Evaluation results: cycles, energy breakdown, area breakdown, and the
 * derived metrics (EDP, ED^2) the paper reports.
 */

#ifndef HIGHLIGHT_MODEL_RESULT_HH
#define HIGHLIGHT_MODEL_RESULT_HH

#include <string>
#include <vector>

#include "energy/components.hh"

namespace highlight
{

/**
 * The outcome of evaluating one design on one workload.
 */
struct EvalResult
{
    std::string design;
    std::string workload;
    bool supported = true;   ///< False: design cannot run this workload.
    std::string note;        ///< e.g. why unsupported, or swap applied.

    double cycles = 0.0;
    double clock_mhz = 1000.0;

    /** Energy breakdown in pJ per component. */
    std::vector<BreakdownEntry> energy_pj;

    /** Area breakdown in um^2 per component. */
    std::vector<BreakdownEntry> area_um2;

    /** Add `pj` to the component's energy entry (creating it). */
    void addEnergy(const std::string &component, double pj);

    /** Total energy in pJ. */
    double totalEnergyPj() const;

    /** Total area in um^2. */
    double totalAreaUm2() const;

    /** Execution time in seconds. */
    double delaySeconds() const;

    /** Energy-delay product in J*s. */
    double edp() const;

    /** Energy-delay-squared product in J*s^2. */
    double ed2() const;
};

/** result.metric / baseline.metric for each reported metric. */
struct NormalizedMetrics
{
    double latency = 0.0;
    double energy = 0.0;
    double edp = 0.0;
    double ed2 = 0.0;
};

/** Normalize `result` against `baseline` (both must be supported). */
NormalizedMetrics normalizeTo(const EvalResult &result,
                              const EvalResult &baseline);

} // namespace highlight

#endif // HIGHLIGHT_MODEL_RESULT_HH
