/**
 * @file
 * Statistical density models (the Sparseloop methodology [54]; the
 * paper adds an HSS density model, Sec 7.1.3).
 *
 * Structured operands have *fixed* per-tile occupancy — that is the
 * whole point of HSS: tile occupancy equals G/H exactly, so workload
 * balance is perfect. Unstructured operands have hypergeometric /
 * binomial tile occupancy, which is what breaks balance on DSTC-style
 * designs (Sec 2.2.1).
 */

#ifndef HIGHLIGHT_MODEL_DENSITY_HH
#define HIGHLIGHT_MODEL_DENSITY_HH

#include <cstdint>

#include "sparsity/hss.hh"

namespace highlight
{

/**
 * Probability that a block of `block` elements from an unstructured
 * tensor of the given density contains at least one nonzero.
 */
double blockNonEmptyProb(double density, std::int64_t block);

/** Expected nonzeros in a block of `block` unstructured elements. */
double expectedBlockOccupancy(double density, std::int64_t block);

/**
 * Expected compute-lane utilization of a DSTC-style design with
 * `lane_width` parallel lanes fed from sub-tensors of `sample_block`
 * elements with unstructured density `density`.
 *
 * DSTC only achieves perfect balance when a sub-tensor's occupancy is
 * a multiple of the lane width (Sec 2.2.1); otherwise the last lane
 * group runs partially empty. util = E[occ] / E[ceil(occ/W) * W] with
 * occ ~ Binomial(sample_block, density). Structured operands (exact
 * occupancy) get util = 1 from the same formula.
 */
double unstructuredUtilization(double density, int lane_width,
                               int sample_block = 128);

/**
 * The HSS density model: the exact stored/compute density of a
 * conforming operand is prod(Gn/Hn); this helper merely documents the
 * equivalence and funnels every model through one call site.
 */
double hssDensity(const HssSpec &spec);

} // namespace highlight

#endif // HIGHLIGHT_MODEL_DENSITY_HH
