#include "model/density.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace highlight
{

double
blockNonEmptyProb(double density, std::int64_t block)
{
    if (density < 0.0 || density > 1.0)
        fatal(msgOf("blockNonEmptyProb: density ", density));
    if (block < 1)
        fatal(msgOf("blockNonEmptyProb: block ", block));
    return 1.0 - std::pow(1.0 - density, static_cast<double>(block));
}

double
expectedBlockOccupancy(double density, std::int64_t block)
{
    if (density < 0.0 || density > 1.0)
        fatal(msgOf("expectedBlockOccupancy: density ", density));
    return density * static_cast<double>(block);
}

namespace
{

struct UtilCtx
{
    int lane_width;
};

double
ceilToLanes(int k, const void *ctx)
{
    const auto *c = static_cast<const UtilCtx *>(ctx);
    if (k == 0)
        return 0.0;
    const int groups = (k + c->lane_width - 1) / c->lane_width;
    return static_cast<double>(groups) *
           static_cast<double>(c->lane_width);
}

double
identityK(int k, const void *)
{
    return static_cast<double>(k);
}

} // namespace

double
unstructuredUtilization(double density, int lane_width, int sample_block)
{
    if (lane_width < 1 || sample_block < 1)
        fatal("unstructuredUtilization: bad geometry");
    if (density <= 0.0)
        return 1.0; // no work at all: vacuous full utilization
    UtilCtx ctx{lane_width};
    const double e_occ =
        binomialExpectation(sample_block, density, identityK, nullptr);
    const double e_slots =
        binomialExpectation(sample_block, density, ceilToLanes, &ctx);
    if (e_slots <= 0.0)
        return 1.0;
    return e_occ / e_slots;
}

double
hssDensity(const HssSpec &spec)
{
    return spec.density();
}

} // namespace highlight
