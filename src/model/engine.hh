/**
 * @file
 * The shared analytical traffic engine (Sparseloop methodology [54]).
 *
 * Every accelerator model reduces its design decisions to a
 * TrafficParams record; the engine turns that record plus the
 * architecture and component library into cycle counts and a
 * per-component energy breakdown under one canonical A-stationary
 * tiling (see dataflow/mapping.hh):
 *
 *   cycles  = M*N*K * time_fraction / (num_macs * utilization)
 *   DRAM    = A once + B per M-tile pass + outputs once
 *   GLB     = A re-read per N-tile pass; B streamed per compute step
 *             (spatial_k words per step, scaled by the fetch fraction);
 *             outputs written once
 *   RF      = partial-sum read+write per step per output row
 *             (spatially reduced), or per effectual MAC for
 *             outer-product designs (DSTC's accumulation tax)
 *   MAC     = effectual MACs at full energy; occupied-but-ineffectual
 *             lane slots at gated energy
 *   SAF     = per-step muxing + per-B-fetch extras (VFMU)
 *   meta    = stored-word metadata prorated by field width
 *
 * All knobs are densities/fractions in [0, 1], so the same formulas
 * serve dense, structured, and unstructured designs.
 */

#ifndef HIGHLIGHT_MODEL_ENGINE_HH
#define HIGHLIGHT_MODEL_ENGINE_HH

#include <cstdint>

#include "arch/arch_spec.hh"
#include "dataflow/mapping.hh"
#include "energy/components.hh"
#include "model/result.hh"

namespace highlight
{

/** Partial-sum accumulation style. */
enum class AccumStyle
{
    SpatialReduce, ///< K-lanes reduced before the RF (inner product).
    OuterProduct,  ///< Every effectual MAC updates the RF (DSTC).
};

/**
 * The design-and-workload knobs consumed by the engine.
 */
struct TrafficParams
{
    // --- workload ---
    std::int64_t m = 0, k = 0, n = 0;
    double a_density = 1.0; ///< Actual nonzero fraction of A.
    double b_density = 1.0; ///< Actual nonzero fraction of B.

    // --- storage behaviour ---
    double a_stored_density = 1.0;    ///< Fraction of A words stored.
    double b_stored_density = 1.0;    ///< Fraction of B words stored.
    double a_meta_bits_per_word = 0.0;///< Metadata bits per stored A word.
    double b_meta_bits_per_word = 0.0;///< Metadata bits per stored B word.

    // --- compute behaviour ---
    /** Fraction of dense compute steps the design executes. */
    double time_fraction = 1.0;
    /** Lane utilization divisor (workload balance). */
    double utilization = 1.0;
    /** Fraction of M*N*K multiplications that are effectual. */
    double effectual_mac_fraction = 1.0;
    /** Ineffectual occupied lanes burn gated (true) or full energy. */
    bool gate_ineffectual = false;

    // --- traffic behaviour ---
    /** Fraction of B fetch slots that actually read the GLB. */
    double b_fetch_fraction = 1.0;
    AccumStyle accum = AccumStyle::SpatialReduce;
    /** Scale on RF partial-sum traffic (activation gating savings). */
    double psum_fraction = 1.0;
    /**
     * Outer-product designs keep an output tile of 32-bit partial sums
     * resident instead of an A tile, so the GLB tile extent is set by
     * the psum footprint and operands re-stream per output tile
     * (DSTC's dataflow tax, Sec 2.2.1).
     */
    bool output_stationary = false;
    /**
     * Energy per accumulation access for OuterProduct designs (a large
     * banked buffer holding 32-bit psums); < 0 uses the plain RF cost.
     */
    double accum_access_pj = -1.0;
    /**
     * Designs whose register files are too small to hold operands
     * stationary (S2TA's 64B RFs) re-read A from the GLB every step.
     */
    bool a_stream_per_step = false;

    // --- SAF costs ---
    double mux_pj_per_step = 0.0;        ///< Whole-chip mux energy/step.
    double saf_pj_per_b_fetch = 0.0;     ///< e.g. VFMU buffer per word.
    double saf_pj_per_a_word = 0.0;      ///< A-side decode per word.
};

/**
 * Run the engine: produce cycles and the energy breakdown. The caller
 * (each accelerator model) fills in design identity, area, and notes.
 */
EvalResult evaluateTraffic(const ArchSpec &arch,
                           const ComponentLibrary &lib,
                           const TrafficParams &p);

} // namespace highlight

#endif // HIGHLIGHT_MODEL_ENGINE_HH
