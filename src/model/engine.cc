#include "model/engine.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace highlight
{

EvalResult
evaluateTraffic(const ArchSpec &arch, const ComponentLibrary &lib,
                const TrafficParams &p)
{
    if (p.m < 1 || p.k < 1 || p.n < 1)
        fatal(msgOf("evaluateTraffic: bad GEMM ", p.m, "x", p.k, "x",
                    p.n));
    if (p.time_fraction <= 0.0 || p.utilization <= 0.0)
        fatal("evaluateTraffic: time_fraction/utilization must be > 0");

    EvalResult r;
    r.design = arch.name;
    r.clock_mhz = lib.tech().clock_mhz;

    const double dense_macs = static_cast<double>(p.m) *
                              static_cast<double>(p.k) *
                              static_cast<double>(p.n);
    const double n_macs = static_cast<double>(arch.numMacs());
    const double spatial_k = static_cast<double>(arch.spatial_k);
    const double spatial_m = static_cast<double>(arch.spatialM());

    // --- time ---
    const double steps =
        dense_macs * p.time_fraction / (n_macs * p.utilization);
    r.cycles = std::ceil(steps);

    // --- tiling (compression widens tiles, cutting DRAM passes) ---
    // A metadata partition that carries no metadata (dense-mode
    // operation of a sparse design) is banked SRAM the design can
    // repurpose for data, which is how sparse designs reach dense-
    // accelerator parity (Sec 1's second goal).
    ArchSpec eff_arch = arch;
    if (p.a_meta_bits_per_word == 0.0 && p.b_meta_bits_per_word == 0.0) {
        eff_arch.glb_data_kb += eff_arch.glb_meta_kb;
        eff_arch.glb_meta_kb = 0.0;
    }
    GemmTiling tiling = computeTiling(
        eff_arch, p.m, p.k, p.n, p.a_stored_density, p.b_stored_density);
    if (p.output_stationary) {
        // Outer product: the resident tile is the 32-bit output tile,
        // not an A tile; operands re-stream once per output tile.
        const GlbPartition part;
        const double psum_words_per_row = 2.0 * static_cast<double>(p.n);
        std::int64_t m_tile = static_cast<std::int64_t>(
            static_cast<double>(eff_arch.glbDataWords()) *
            (part.a_share + part.out_share) / psum_words_per_row);
        m_tile = std::clamp<std::int64_t>(m_tile, 1, p.m);
        tiling.m_tile = m_tile;
        tiling.m_passes = (p.m + m_tile - 1) / m_tile;
        // A values enjoy full reuse across their output tile's columns
        // (the outer-product win), so A is read once overall.
        tiling.n_passes = 1;
    }

    const double a_words = static_cast<double>(p.m) *
                           static_cast<double>(p.k) *
                           p.a_stored_density;
    const double b_words = static_cast<double>(p.k) *
                           static_cast<double>(p.n) *
                           p.b_stored_density;
    const double out_words =
        static_cast<double>(p.m) * static_cast<double>(p.n);

    // --- DRAM ---
    const double dram_words =
        a_words + b_words * static_cast<double>(tiling.m_passes) +
        out_words;
    r.addEnergy("dram", dram_words * lib.dramAccessPj());
    // Metadata travels with its operand from DRAM too.
    const double a_meta_word_equiv =
        a_words * p.a_meta_bits_per_word / lib.tech().word_bits;
    const double b_meta_word_equiv =
        b_words * p.b_meta_bits_per_word / lib.tech().word_bits;
    r.addEnergy("dram",
                (a_meta_word_equiv +
                 b_meta_word_equiv * static_cast<double>(tiling.m_passes)) *
                    lib.dramAccessPj());

    // --- GLB data traffic ---
    const double glb_pj = lib.sramAccessPj(eff_arch.glb_data_kb);
    // A: written once per DRAM load, re-read to the PE registers once
    // per B column tile (N-tile pass).
    const double glb_a_writes = a_words;
    const double glb_a_reads =
        a_words * static_cast<double>(tiling.n_passes);
    // B: written on every DRAM pass, read by compute: spatial_k words
    // per step (times the fetch fraction for compressed streams).
    const double glb_b_writes =
        b_words * static_cast<double>(tiling.m_passes);
    const double glb_b_reads = steps * spatial_k * p.b_fetch_fraction;
    const double glb_out_writes = out_words;
    // Small-RF designs stream A operands from the GLB every step
    // instead of holding them in registers.
    const double glb_a_stream =
        p.a_stream_per_step ? steps * spatial_m : 0.0;
    r.addEnergy("glb", (glb_a_writes + glb_a_reads + glb_b_writes +
                        glb_b_reads + glb_out_writes + glb_a_stream) *
                           glb_pj);

    // --- GLB metadata traffic ---
    if (eff_arch.glb_meta_kb > 0.0 &&
        (p.a_meta_bits_per_word > 0.0 || p.b_meta_bits_per_word > 0.0)) {
        const double a_meta_accesses = glb_a_writes + glb_a_reads;
        const double b_meta_accesses = glb_b_writes + glb_b_reads;
        const double meta_pj_a = lib.metadataAccessPj(
            eff_arch.glb_meta_kb,
            static_cast<int>(std::ceil(p.a_meta_bits_per_word)));
        const double meta_pj_b = lib.metadataAccessPj(
            eff_arch.glb_meta_kb,
            static_cast<int>(std::ceil(p.b_meta_bits_per_word)));
        double meta_pj = 0.0;
        if (p.a_meta_bits_per_word > 0.0)
            meta_pj += a_meta_accesses * meta_pj_a;
        if (p.b_meta_bits_per_word > 0.0)
            meta_pj += b_meta_accesses * meta_pj_b;
        r.addEnergy("metadata", meta_pj);
    }

    // --- RF partial sums ---
    const double rf_pj = lib.rfAccessPj(arch.rf_kb);
    if (p.accum == AccumStyle::SpatialReduce) {
        // One read+write per step per output row after the spatial
        // K-reduction, plus a final drain per output.
        const double psum_accesses =
            2.0 * steps * spatial_m * p.psum_fraction + out_words;
        r.addEnergy("rf", psum_accesses * rf_pj);
    } else {
        // Outer product: every effectual MAC's 32-bit partial sum is
        // scattered to the accumulation storage individually — DSTC's
        // dominant sparsity tax (Sec 2.2.1, Fig 16(a)).
        const double accum_pj =
            p.accum_access_pj >= 0.0 ? p.accum_access_pj : rf_pj;
        const double accum_accesses =
            2.0 * dense_macs * p.effectual_mac_fraction;
        r.addEnergy("rf", accum_accesses * accum_pj + out_words * rf_pj);
    }

    // --- MACs ---
    const double effectual = dense_macs * p.effectual_mac_fraction;
    const double lane_slots = steps * n_macs;
    const double occupied_ineffectual =
        std::max(0.0, lane_slots - effectual);
    r.addEnergy("mac", effectual * lib.macComputePj());
    r.addEnergy("mac",
                occupied_ineffectual * (p.gate_ineffectual
                                            ? lib.macGatedPj()
                                            : lib.macComputePj()));

    // --- operand registers ---
    // Each lane reads its stationary A operand and latches a B operand
    // every occupied step; A loads also write the registers.
    const double reg_accesses = 2.0 * lane_slots + glb_a_reads;
    r.addEnergy("reg", reg_accesses * lib.regAccessPj());

    // --- SAFs ---
    double saf_pj = p.mux_pj_per_step * steps;
    saf_pj += p.saf_pj_per_b_fetch * glb_b_reads;
    saf_pj += p.saf_pj_per_a_word * glb_a_reads;
    if (saf_pj > 0.0)
        r.addEnergy("saf", saf_pj);

    return r;
}

} // namespace highlight
