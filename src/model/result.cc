#include "model/result.hh"

#include "common/logging.hh"

namespace highlight
{

void
EvalResult::addEnergy(const std::string &component, double pj)
{
    for (auto &entry : energy_pj) {
        if (entry.name == component) {
            entry.value += pj;
            return;
        }
    }
    energy_pj.push_back({component, pj});
}

double
EvalResult::totalEnergyPj() const
{
    return breakdownTotal(energy_pj);
}

double
EvalResult::totalAreaUm2() const
{
    return breakdownTotal(area_um2);
}

double
EvalResult::delaySeconds() const
{
    return cycles / (clock_mhz * 1e6);
}

double
EvalResult::edp() const
{
    return totalEnergyPj() * 1e-12 * delaySeconds();
}

double
EvalResult::ed2() const
{
    const double d = delaySeconds();
    return totalEnergyPj() * 1e-12 * d * d;
}

NormalizedMetrics
normalizeTo(const EvalResult &result, const EvalResult &baseline)
{
    if (!result.supported || !baseline.supported)
        fatal("normalizeTo: cannot normalize unsupported results");
    NormalizedMetrics n;
    n.latency = result.cycles / baseline.cycles;
    n.energy = result.totalEnergyPj() / baseline.totalEnergyPj();
    n.edp = result.edp() / baseline.edp();
    n.ed2 = result.ed2() / baseline.ed2();
    return n;
}

} // namespace highlight
