/**
 * @file
 * DSSO: the dual structured sparse operands design (paper Sec 7.5).
 *
 * Dual-side HSS with alternating dense ranks: operand A carries
 * C1(dense)->C0(2:4) and operand B carries C1(2:{2<=H<=8})->C0(dense).
 * Both operands are never sparse at the same rank, so each rank's SAF
 * performs a dense-sparse intersection — perfectly balanced by
 * construction — and the speedups multiply (Fig 17: 2x over HighLight
 * at the commonly supported degrees). The cost is fewer supported B
 * degrees and the extra output-recompression machinery the paper
 * leaves as future work.
 */

#ifndef HIGHLIGHT_ACCEL_DSSO_HH
#define HIGHLIGHT_ACCEL_DSSO_HH

#include "accel/accelerator.hh"

namespace highlight
{

/** Dual structured sparse operands accelerator. */
class DssoAccel : public Accelerator
{
  public:
    explicit DssoAccel(ComponentLibrary lib = ComponentLibrary());

    std::string supportedPatternsA() const override
    {
        return "C1(dense)->C0(2:{2<=H<=4})";
    }
    std::string supportedPatternsB() const override
    {
        return "C1(2:{2<=H<=8})->C0(dense)";
    }

    bool supports(const GemmWorkload &w) const override;
    EvalResult evaluate(const GemmWorkload &w) const override;
    std::vector<BreakdownEntry> areaBreakdown() const override;
};

} // namespace highlight

#endif // HIGHLIGHT_ACCEL_DSSO_HH
