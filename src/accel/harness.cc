#include "accel/harness.hh"

#include "accel/dstc.hh"
#include "accel/highlight.hh"
#include "accel/s2ta.hh"
#include "accel/stc.hh"
#include "accel/tc.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace highlight
{

EvalResult
evaluateBest(const Accelerator &accel, const GemmWorkload &w)
{
    const GemmWorkload swapped = w.swapped();
    const bool direct_ok = accel.supports(w);
    const bool swapped_ok = accel.supports(swapped);

    if (!direct_ok && !swapped_ok)
        return accel.evaluate(w); // carries the unsupported note

    if (direct_ok && !swapped_ok)
        return accel.evaluate(w);

    if (!direct_ok && swapped_ok) {
        EvalResult r = accel.evaluate(swapped);
        r.workload = w.name;
        r.note += " [operands swapped]";
        return r;
    }

    EvalResult direct = accel.evaluate(w);
    EvalResult other = accel.evaluate(swapped);
    if (other.edp() < direct.edp()) {
        other.workload = w.name;
        other.note += " [operands swapped]";
        return other;
    }
    return direct;
}

double
SuiteResult::geomeanEdp() const
{
    std::vector<double> edps;
    for (const auto &r : results) {
        if (r.supported)
            edps.push_back(r.edp());
    }
    if (edps.empty())
        fatal(msgOf("SuiteResult: design ", design,
                    " supports no workload in the suite"));
    return geomean(edps);
}

// evaluateSuite lives in src/runtime/suite_runner.cc: it fans the
// design x workload matrix out through the batched parallel runtime,
// which layers above accel/.

std::vector<std::unique_ptr<Accelerator>>
standardDesigns()
{
    std::vector<std::unique_ptr<Accelerator>> designs;
    designs.push_back(std::make_unique<TcLike>());
    designs.push_back(std::make_unique<StcLike>());
    designs.push_back(std::make_unique<S2taLike>());
    designs.push_back(std::make_unique<DstcLike>());
    designs.push_back(std::make_unique<HighLightAccel>());
    return designs;
}

} // namespace highlight
