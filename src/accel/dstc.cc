#include "accel/dstc.hh"

#include "common/logging.hh"
#include "model/density.hh"

namespace highlight
{

DstcLike::DstcLike(ComponentLibrary lib) : Accelerator(dstcArch(), lib) {}

bool
DstcLike::supports(const GemmWorkload &) const
{
    // Unstructured support subsumes everything: dense, structured, and
    // arbitrary sparsity all process correctly.
    return true;
}

EvalResult
DstcLike::evaluate(const GemmWorkload &w) const
{
    TrafficParams p;
    p.m = w.m;
    p.k = w.k;
    p.n = w.n;
    p.a_density = w.a.density;
    p.b_density = w.b.density;

    // Bitmask compression: only nonzeros stored, but the mask costs
    // one bit per *dense* element — 1/density bits per stored word.
    p.a_stored_density = w.a.density;
    p.a_meta_bits_per_word = 1.0 / w.a.density;
    p.b_stored_density = w.b.density;
    p.b_meta_bits_per_word = 1.0 / w.b.density;

    // Outer product computes only nonzero pairs; balance degrades when
    // per-column occupancies don't hit lane-width multiples. Structured
    // operands would balance perfectly; DSTC sees them as unstructured.
    // Occupancy is counted over the fetch-group sub-tensor (two
    // 32-wide vectors); only occupancies that are multiples of the
    // lane width balance perfectly (Sec 2.2.1).
    constexpr int kBalanceBlock = 2 * kLaneWidth;
    const double util_a =
        w.a.kind == PatternKind::Dense
            ? 1.0
            : unstructuredUtilization(w.a.density, kLaneWidth,
                                      kBalanceBlock);
    const double util_b =
        w.b.kind == PatternKind::Dense
            ? 1.0
            : unstructuredUtilization(w.b.density, kLaneWidth,
                                      kBalanceBlock);
    p.time_fraction = w.a.density * w.b.density;
    p.utilization = util_a * util_b;

    // Every executed pair is effectual (both operands nonzero).
    p.effectual_mac_fraction = w.a.density * w.b.density;
    p.gate_ineffectual = true; // idle lanes from imbalance clock-gate

    // The sparsity tax: partial products scatter individually into the
    // accumulation storage (Sec 2.2.1 "large, and thus expensive,
    // accumulation buffers to hold the now randomly distributed
    // output"). Each update is a 32-bit read-modify-write of a large
    // banked buffer (2 words at a 32KB-class access cost), and the
    // output-stationary tiling re-streams operands once per psum tile.
    p.accum = AccumStyle::OuterProduct;
    p.accum_access_pj = 2.0 * lib_.sramAccessPj(32.0);
    p.output_stationary = true;

    // Merge/coordinate-compute network energy per step.
    p.mux_pj_per_step =
        static_cast<double>(arch_.numMacs()) * lib_.muxSelectPj(4);

    EvalResult r = evaluateTraffic(arch_, lib_, p);
    r.workload = w.name;
    r.note = msgOf("utilization ", util_a * util_b);
    return r;
}

std::vector<BreakdownEntry>
DstcLike::areaBreakdown() const
{
    auto area = baseAreaBreakdown();
    // Merge network + coordinate queues; comparable to a dual-side
    // 8-wide selection per lane plus output coordinate registers.
    const double merge =
        static_cast<double>(arch_.numMacs()) * 2.0 * lib_.muxAreaUm2(8);
    const double coord_regs = lib_.regArrayAreaUm2(
        static_cast<std::int64_t>(arch_.numMacs()) * 2 * 16);
    area.push_back({"saf", merge + coord_regs});
    return area;
}

} // namespace highlight
