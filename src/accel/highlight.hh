/**
 * @file
 * The HighLight accelerator model (paper Sec 5-6).
 *
 * Operand A: dense or two-rank HSS within C1(4:{4<=H<=8}) ->
 * C0(2:{2<=H<=4}) (Table 3). Hierarchical skipping SAFs exploit both
 * ranks, so speedup is exactly 1/density with perfect workload balance.
 * Operand B: dense or unstructured; exploited by compression (fewer
 * GLB/DRAM words via the three-level metadata of Sec 6.4, streamed
 * through the VFMU) and by gating (idle MACs and suppressed partial-sum
 * updates), which saves energy but not time.
 */

#ifndef HIGHLIGHT_ACCEL_HIGHLIGHT_HH
#define HIGHLIGHT_ACCEL_HIGHLIGHT_HH

#include "accel/accelerator.hh"
#include "energy/mux_model.hh"

namespace highlight
{

/** The HighLight accelerator. */
class HighLightAccel : public Accelerator
{
  public:
    explicit HighLightAccel(ComponentLibrary lib = ComponentLibrary());

    std::string supportedPatternsA() const override
    {
        return "C1(4:{4<=H<=8})->C0(2:{2<=H<=4})";
    }
    std::string supportedPatternsB() const override
    {
        return "dense; unstructured sparse";
    }

    bool supports(const GemmWorkload &w) const override;
    EvalResult evaluate(const GemmWorkload &w) const override;
    std::vector<BreakdownEntry> areaBreakdown() const override;

    /** The skipping-SAF mux structure (for Fig 6(b)/Fig 16(b)). */
    const MuxModel &muxModel() const { return mux_model_; }

    /** True if the HSS spec fits the supported rank patterns. */
    static bool fitsWeightSupport(const HssSpec &spec);

  private:
    MuxModel mux_model_;
};

} // namespace highlight

#endif // HIGHLIGHT_ACCEL_HIGHLIGHT_HH
