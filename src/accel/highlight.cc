#include "accel/highlight.hh"

#include "common/logging.hh"
#include "format/hierarchical_cp.hh"
#include "model/density.hh"

namespace highlight
{

namespace
{

/** G per rank of the HighLight skipping SAFs (rank 0 first). */
const std::vector<int> kGPerRank = {2, 4};
/** Hmax per rank (rank 0 first). */
const std::vector<int> kHmaxPerRank = {4, 8};

} // namespace

HighLightAccel::HighLightAccel(ComponentLibrary lib)
    : Accelerator(highlightArch(), lib),
      mux_model_(buildHssMuxModel(kGPerRank, kHmaxPerRank,
                                  highlightArch().pes_per_array,
                                  highlightArch().num_arrays))
{
}

bool
HighLightAccel::fitsWeightSupport(const HssSpec &spec)
{
    const auto supports = highlightWeightSupport();
    if (spec.numRanks() > supports.size())
        return false;
    for (std::size_t n = 0; n < spec.numRanks(); ++n) {
        const GhPattern &p = spec.rank(n);
        const RankSupport &s = supports[n];
        if (p.isDense())
            continue; // a dense rank needs no SAF support
        if (p.g != s.g || p.h < s.h_min || p.h > s.h_max)
            return false;
    }
    return true;
}

bool
HighLightAccel::supports(const GemmWorkload &w) const
{
    // A: dense runs as the 4:4 -> 2:2 degenerate degree; HSS must fit
    // the SAF ranges. Unstructured A is not expressible.
    if (w.a.kind == PatternKind::Unstructured)
        return false;
    if (w.a.kind == PatternKind::Hss && !fitsWeightSupport(w.a.hss))
        return false;
    // B: dense or unstructured both fine (structured B also processes
    // correctly; it is simply treated as unstructured).
    return true;
}

EvalResult
HighLightAccel::evaluate(const GemmWorkload &w) const
{
    if (!supports(w)) {
        return unsupportedResult(
            w, "operand A must be dense or HSS within "
               "C1(4:{4<=H<=8})->C0(2:{2<=H<=4})");
    }

    const bool a_sparse = w.a.kind == PatternKind::Hss &&
                          !w.a.hss.isDense();
    const double a_density = a_sparse ? w.a.hss.density() : 1.0;
    const bool b_sparse = w.b.density < 1.0;

    TrafficParams p;
    p.m = w.m;
    p.k = w.k;
    p.n = w.n;
    p.a_density = w.a.density;
    p.b_density = w.b.density;

    // --- operand A: hierarchical CP storage + hierarchical skipping ---
    int h0 = 2, h1 = 4; // degenerate dense geometry
    if (a_sparse) {
        const HssSpec &spec = w.a.hss;
        h0 = spec.rank(0).h;
        h1 = spec.numRanks() > 1 ? spec.rank(1).h : 4;
        p.a_stored_density = a_density;
        // Per stored word: rank-0 offset, plus the rank-1 block offset
        // amortized over the G0 = 2 values it covers (Fig 9).
        p.a_meta_bits_per_word =
            bitsFor(h0) + static_cast<double>(bitsFor(h1)) / 2.0;
        // Hierarchical skipping: total speedup is the product of the
        // per-rank speedups = 1/density, with perfect balance.
        p.time_fraction = a_density;
        p.utilization = 1.0;
    }

    // --- operand B: compression + gating (energy, not time) ---
    // Compression pays ~4 metadata bits per stored word, so it only
    // wins below ~75% density; nearly-dense activations are stored
    // uncompressed and exploited by gating alone (cf. the Fig 13
    // footnote evaluating the 25%-sparse column conservatively).
    if (b_sparse && w.b.density < 0.75) {
        p.b_stored_density = w.b.density;
        // Three-level metadata (Sec 6.4): intra-block offsets
        // (2 bits), block end addresses and per-set counts amortized
        // over the nonzeros they describe.
        p.b_meta_bits_per_word = bitsFor(4) + 2.0;
        // Only stored nonzeros stream from the GLB through the VFMU.
        p.b_fetch_fraction = w.b.density;
    }

    // Effectual MACs need both operands nonzero; every other occupied
    // lane slot is gated (Sec 6.4: "letting the MAC unit stay idle").
    p.effectual_mac_fraction = w.a.density * w.b.density;
    p.gate_ineffectual = true;
    // Gated lanes also skip their partial-sum update; an output-row
    // update happens whenever any of its spatial-K lanes fired.
    p.psum_fraction =
        blockNonEmptyProb(w.b.density, arch_.spatial_k) ;

    // --- SAF costs ---
    // Rank-0: every MAC lane selects its B value through an
    // Hmax0-to-1 mux each step. Rank-1: each array distributes blocks
    // through G1 Hmax1-to-1 selections per step.
    p.mux_pj_per_step =
        static_cast<double>(arch_.numMacs()) *
            lib_.muxSelectPj(kHmaxPerRank[0]) +
        static_cast<double>(arch_.num_arrays) * kGPerRank[1] *
            lib_.muxSelectPj(kHmaxPerRank[1]);
    // VFMU: every fetched B word is written into and read out of the
    // small streaming buffer (Sec 6.3.2).
    p.saf_pj_per_b_fetch = 2.0 * lib_.regAccessPj();

    EvalResult r = evaluateTraffic(arch_, lib_, p);
    r.workload = w.name;
    if (a_sparse)
        r.note = msgOf("A as ", w.a.hss.str(), ", speedup ",
                       1.0 / a_density);
    return r;
}

std::vector<BreakdownEntry>
HighLightAccel::areaBreakdown() const
{
    auto area = baseAreaBreakdown();
    double saf = mux_model_.areaUm2(lib_);
    // VFMU per array: a register buffer holding 2 x Hmax1 blocks of
    // Hmax0 words (Sec 6.3.2) plus the 4-to-2 start/end address muxes.
    const std::int64_t vfmu_bits =
        static_cast<std::int64_t>(2) * kHmaxPerRank[1] * kHmaxPerRank[0] *
        lib_.tech().word_bits;
    saf += arch_.num_arrays *
           (lib_.regArrayAreaUm2(vfmu_bits) + 2.0 * lib_.muxAreaUm2(4));
    // Compression unit (Fig 10): per-array comparator/encoder chain for
    // recompressing output activations, sized like a 32-lane encoder.
    saf += arch_.num_arrays * 32.0 * lib_.muxAreaUm2(4);
    area.push_back({"saf", saf});
    return area;
}

} // namespace highlight
