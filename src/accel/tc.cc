#include "accel/tc.hh"

namespace highlight
{

TcLike::TcLike(ComponentLibrary lib) : Accelerator(tcArch(), lib) {}

bool
TcLike::supports(const GemmWorkload &) const
{
    // A dense design produces correct results for any operand content;
    // it simply multiplies the zeros.
    return true;
}

EvalResult
TcLike::evaluate(const GemmWorkload &w) const
{
    TrafficParams p;
    p.m = w.m;
    p.k = w.k;
    p.n = w.n;
    p.a_density = w.a.density;
    p.b_density = w.b.density;
    // Everything dense: full storage, full time, every lane slot burns
    // full MAC energy regardless of operand zeros.
    p.time_fraction = 1.0;
    p.utilization = 1.0;
    p.effectual_mac_fraction = 1.0;
    p.gate_ineffectual = false;

    EvalResult r = evaluateTraffic(arch_, lib_, p);
    r.workload = w.name;
    return r;
}

std::vector<BreakdownEntry>
TcLike::areaBreakdown() const
{
    return baseAreaBreakdown();
}

} // namespace highlight
