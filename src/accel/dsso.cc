#include "accel/dsso.hh"

#include "common/logging.hh"
#include "format/hierarchical_cp.hh"

namespace highlight
{

namespace
{

/** A-side rank-0 support: 2:{2..4}. */
bool
fitsASupport(const OperandSparsity &a)
{
    if (a.kind == PatternKind::Dense)
        return true;
    if (a.kind != PatternKind::Hss)
        return false;
    const HssSpec &spec = a.hss;
    // Rank 0 must be 2:{2..4}; all higher ranks must be dense.
    const GhPattern &p0 = spec.rank(0);
    if (!p0.isDense() && (p0.g != 2 || p0.h < 2 || p0.h > 4))
        return false;
    for (std::size_t n = 1; n < spec.numRanks(); ++n) {
        if (!spec.rank(n).isDense())
            return false;
    }
    return true;
}

/** B-side rank-1 support: 2:{2..8} with dense rank 0. */
bool
fitsBSupport(const OperandSparsity &b)
{
    if (b.kind == PatternKind::Dense)
        return true;
    if (b.kind != PatternKind::Hss)
        return false;
    const HssSpec &spec = b.hss;
    if (!spec.rank(0).isDense())
        return false;
    for (std::size_t n = 1; n < spec.numRanks(); ++n) {
        const GhPattern &p = spec.rank(n);
        if (p.isDense())
            continue;
        if (n != 1 || p.g != 2 || p.h < 2 || p.h > 8)
            return false;
    }
    return true;
}

} // namespace

DssoAccel::DssoAccel(ComponentLibrary lib)
    : Accelerator(dssoArch(), lib)
{
}

bool
DssoAccel::supports(const GemmWorkload &w) const
{
    return fitsASupport(w.a) && fitsBSupport(w.b);
}

EvalResult
DssoAccel::evaluate(const GemmWorkload &w) const
{
    if (!supports(w)) {
        return unsupportedResult(
            w, "DSSO needs A in C1(dense)->C0(2:{2..4}) and B in "
               "C1(2:{2..8})->C0(dense)");
    }

    const double da = w.a.density;
    const double db = w.b.density;

    TrafficParams p;
    p.m = w.m;
    p.k = w.k;
    p.n = w.n;
    p.a_density = da;
    p.b_density = db;

    // Each operand carries offset metadata only for its sparse rank
    // (Sec 7.5): A per-value rank-0 offsets, B per-block rank-1
    // offsets amortized over the dense H0 values in a block.
    if (da < 1.0) {
        p.a_stored_density = da;
        p.a_meta_bits_per_word = bitsFor(4);
    }
    if (db < 1.0) {
        p.b_stored_density = db;
        p.b_meta_bits_per_word = static_cast<double>(bitsFor(8)) / 4.0;
        p.b_fetch_fraction = db;
    }

    // Dual-side skipping: dense-sparse intersections at each rank give
    // multiplicative speedup with perfect balance.
    p.time_fraction = da * db;
    p.utilization = 1.0;
    p.effectual_mac_fraction = da * db;
    p.gate_ineffectual = true;

    // Rank-0 selection per lane plus rank-1 block selection per array.
    p.mux_pj_per_step =
        static_cast<double>(arch_.numMacs()) * lib_.muxSelectPj(4) +
        static_cast<double>(arch_.num_arrays) * 2.0 *
            lib_.muxSelectPj(8);
    p.saf_pj_per_b_fetch = 2.0 * lib_.regAccessPj();

    EvalResult r = evaluateTraffic(arch_, lib_, p);
    r.workload = w.name;
    r.note = msgOf("dual-side speedup ", 1.0 / (da * db));
    return r;
}

std::vector<BreakdownEntry>
DssoAccel::areaBreakdown() const
{
    auto area = baseAreaBreakdown();
    // Rank-0 muxes per lane, rank-1 block selection per array, VFMU,
    // plus the output pruning/compression unit dual-side HSS needs.
    double saf = static_cast<double>(arch_.numMacs()) *
                 lib_.muxAreaUm2(4);
    saf += arch_.num_arrays * 2.0 * lib_.muxAreaUm2(8);
    const std::int64_t vfmu_bits = 2 * 8 * 4 * lib_.tech().word_bits;
    saf += arch_.num_arrays *
           (lib_.regArrayAreaUm2(vfmu_bits) + 2.0 * lib_.muxAreaUm2(4));
    saf += arch_.num_arrays * 64.0 * lib_.muxAreaUm2(4);
    area.push_back({"saf", saf});
    return area;
}

} // namespace highlight
