/**
 * @file
 * The abstract accelerator model interface.
 *
 * Each design (Table 1 / Table 3) implements: which operand sparsity
 * patterns it supports, how a workload maps to cycles and energy, and
 * its area breakdown. All designs share the component library and the
 * canonical traffic engine so comparisons are apples-to-apples
 * (Sec 7.1.1: "all accelerator designs are evaluated with the same
 * evaluation framework to ensure fairness").
 */

#ifndef HIGHLIGHT_ACCEL_ACCELERATOR_HH
#define HIGHLIGHT_ACCEL_ACCELERATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "accel/workload.hh"
#include "arch/arch_spec.hh"
#include "energy/components.hh"
#include "model/engine.hh"
#include "model/result.hh"

namespace highlight
{

/**
 * Base class for all accelerator models.
 */
class Accelerator
{
  public:
    explicit Accelerator(
        ArchSpec arch,
        ComponentLibrary lib = ComponentLibrary());
    virtual ~Accelerator() = default;

    const std::string &name() const { return arch_.name; }
    const ArchSpec &arch() const { return arch_; }
    const ComponentLibrary &lib() const { return lib_; }

    /** Table 3 cell for operand A, e.g. "dense; C0({G<=2}:4)". */
    virtual std::string supportedPatternsA() const = 0;

    /** Table 3 cell for operand B. */
    virtual std::string supportedPatternsB() const = 0;

    /** Can this design produce functionally correct results for w? */
    virtual bool supports(const GemmWorkload &w) const = 0;

    /**
     * Evaluate the workload. If unsupported, returns a result with
     * supported = false and a note explaining why.
     */
    virtual EvalResult evaluate(const GemmWorkload &w) const = 0;

    /** Static area breakdown of the design. */
    virtual std::vector<BreakdownEntry> areaBreakdown() const = 0;

    /** Total area. */
    double totalAreaUm2() const;

  protected:
    /** Result skeleton for unsupported workloads. */
    EvalResult unsupportedResult(const GemmWorkload &w,
                                 const std::string &why) const;

    /** Shared datapath/storage area entries (MACs, RF, GLB, regs). */
    std::vector<BreakdownEntry> baseAreaBreakdown() const;

    ArchSpec arch_;
    ComponentLibrary lib_;
};

} // namespace highlight

#endif // HIGHLIGHT_ACCEL_ACCELERATOR_HH
