/**
 * @file
 * GEMM workloads with per-operand sparsity descriptions.
 *
 * Every DNN layer reaches the accelerators as a matrix multiplication
 * (paper Sec 6.1): operand A (weights — dense or structured) times
 * operand B (activations — dense or unstructured). Synthetic workloads
 * (Sec 7.1.2) use 1024x1024 operands with swept sparsity degrees.
 */

#ifndef HIGHLIGHT_ACCEL_WORKLOAD_HH
#define HIGHLIGHT_ACCEL_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "sparsity/hss.hh"

namespace highlight
{

/** How an operand's zeros are distributed. */
enum class PatternKind
{
    Dense,        ///< No zeros assumed exploitable.
    Unstructured, ///< Arbitrary zero locations at the given density.
    Hss,          ///< Conforms to the attached HssSpec.
};

/** One operand's sparsity description. */
struct OperandSparsity
{
    PatternKind kind = PatternKind::Dense;
    double density = 1.0;
    HssSpec hss; ///< Valid when kind == Hss.

    static OperandSparsity dense();
    static OperandSparsity unstructured(double density);
    static OperandSparsity structured(const HssSpec &spec);

    double sparsity() const { return 1.0 - density; }
    std::string str() const;
};

/** A GEMM workload: C[M][N] += A[M][K] * B[K][N]. */
struct GemmWorkload
{
    std::string name;
    std::int64_t m = 0, k = 0, n = 0;
    OperandSparsity a;
    OperandSparsity b;

    /** Total dense multiply count M*K*N. */
    double denseMacs() const;

    /**
     * The operand-swapped workload (paper Sec 7.1.1: MM accelerators
     * treat operands interchangeably): C^T = B^T * A^T exchanges the
     * roles of A and B and of M and N.
     */
    GemmWorkload swapped() const;

    std::string str() const;
};

/**
 * The synthetic suite of Sec 7.1.2 / Fig 13: 1024^3 GEMMs with
 * A sparsity in {0, 50, 75}% and B sparsity in {0, 25, 50, 75}%.
 * Operand A is described as the sparsest HighLight-supported HSS
 * pattern of that density (other designs reinterpret it per their own
 * support); operand B is unstructured.
 */
std::vector<GemmWorkload> syntheticSuite();

} // namespace highlight

#endif // HIGHLIGHT_ACCEL_WORKLOAD_HH
