/**
 * @file
 * STC-like single-sided structured sparse accelerator model
 * (NVIDIA sparse tensor core [37], also representing [60]).
 *
 * Supports operand A that is dense or fits the C0({G<=2}:4) pattern.
 * Sparse mode stores A as 2-of-4 blocks (2-bit offsets) and skips at a
 * fixed 2x rate: even a 1:4 operand runs at 2x, with the empty lane
 * slot idling — the "limited sparsity degree" inflexibility the paper
 * quantifies. Operand B is processed as dense values (no gating, no
 * compression).
 */

#ifndef HIGHLIGHT_ACCEL_STC_HH
#define HIGHLIGHT_ACCEL_STC_HH

#include "accel/accelerator.hh"

namespace highlight
{

/** Sparse-tensor-core-like accelerator. */
class StcLike : public Accelerator
{
  public:
    explicit StcLike(ComponentLibrary lib = ComponentLibrary());

    std::string supportedPatternsA() const override
    {
        return "dense; C0({G<=2}:4)";
    }
    std::string supportedPatternsB() const override { return "dense"; }

    bool supports(const GemmWorkload &w) const override;
    EvalResult evaluate(const GemmWorkload &w) const override;
    std::vector<BreakdownEntry> areaBreakdown() const override;

    /** True if the operand can run in the 2:4 skipping mode. */
    static bool fitsSparseMode(const OperandSparsity &a);
};

} // namespace highlight

#endif // HIGHLIGHT_ACCEL_STC_HH
