/**
 * @file
 * DSTC-like dual-sided unstructured sparse accelerator model [52].
 *
 * Bitmask-compressed operands feed an outer-product dataflow: every
 * nonzero-A x nonzero-B pair is effectual, so no intersection hardware
 * is needed — but each partial product scatters to the accumulation
 * storage individually (no spatial reduction), which is the design's
 * dominant sparsity tax. Workload balance is only perfect when
 * sub-tensor occupancy is a multiple of the 32-lane column width
 * (Sec 2.2.1), modeled with an exact binomial expectation.
 */

#ifndef HIGHLIGHT_ACCEL_DSTC_HH
#define HIGHLIGHT_ACCEL_DSTC_HH

#include "accel/accelerator.hh"

namespace highlight
{

/** Dual-side sparse tensor core (unstructured) accelerator. */
class DstcLike : public Accelerator
{
  public:
    explicit DstcLike(ComponentLibrary lib = ComponentLibrary());

    std::string supportedPatternsA() const override
    {
        return "dense; unstructured sparse";
    }
    std::string supportedPatternsB() const override
    {
        return "dense; unstructured sparse";
    }

    bool supports(const GemmWorkload &w) const override;
    EvalResult evaluate(const GemmWorkload &w) const override;
    std::vector<BreakdownEntry> areaBreakdown() const override;

    /** Lane width whose multiples give perfect balance. */
    static constexpr int kLaneWidth = 32;
};

} // namespace highlight

#endif // HIGHLIGHT_ACCEL_DSTC_HH
