/**
 * @file
 * TC-like dense accelerator model (paper Sec 7.1.1, representing
 * [4, 25, 36]).
 *
 * Oblivious to sparsity: every multiplication executes at full energy,
 * operands are stored uncompressed, and there is no SAF hardware at
 * all — zero sparsity tax, zero sparsity benefit.
 */

#ifndef HIGHLIGHT_ACCEL_TC_HH
#define HIGHLIGHT_ACCEL_TC_HH

#include "accel/accelerator.hh"

namespace highlight
{

/** Dense tensor-core-like accelerator. */
class TcLike : public Accelerator
{
  public:
    explicit TcLike(ComponentLibrary lib = ComponentLibrary());

    std::string supportedPatternsA() const override { return "dense"; }
    std::string supportedPatternsB() const override { return "dense"; }

    bool supports(const GemmWorkload &w) const override;
    EvalResult evaluate(const GemmWorkload &w) const override;
    std::vector<BreakdownEntry> areaBreakdown() const override;
};

} // namespace highlight

#endif // HIGHLIGHT_ACCEL_TC_HH
