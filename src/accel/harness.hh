/**
 * @file
 * Shared evaluation harness (paper Sec 7.1.1).
 *
 * Implements the fairness rules: every design is evaluated with the
 * same engine and component library, and because matrix-multiplication
 * accelerators treat operands interchangeably, designs may swap
 * operands and report the better result (e.g. STC swaps when B is the
 * structured-sparse side).
 */

#ifndef HIGHLIGHT_ACCEL_HARNESS_HH
#define HIGHLIGHT_ACCEL_HARNESS_HH

#include <memory>
#include <vector>

#include "accel/accelerator.hh"

namespace highlight
{

/**
 * Evaluate with operand swapping: runs the workload as-is and swapped
 * (when either is supported) and returns the lower-EDP result.
 */
EvalResult evaluateBest(const Accelerator &accel, const GemmWorkload &w);

/** Result of a full suite evaluation for one design. */
struct SuiteResult
{
    std::string design;
    std::vector<EvalResult> results; // one per workload, may be unsup.

    /** Geomean EDP across supported workloads; fatal if none. */
    double geomeanEdp() const;
};

/**
 * Evaluate a set of designs across a workload suite (with swapping).
 *
 * Defined in src/runtime/suite_runner.cc: the whole design x workload
 * matrix runs as one batch on the parallel evaluation runtime, deduped
 * through a suite-local EvalCache. Results are in (design, workload)
 * input order and bit-identical to evaluating each cell serially.
 */
std::vector<SuiteResult> evaluateSuite(
    const std::vector<const Accelerator *> &designs,
    const std::vector<GemmWorkload> &suite);

/**
 * The standard five-design lineup of the paper's evaluation:
 * TC, STC, S2TA, DSTC, HighLight (owned by the returned vector).
 */
std::vector<std::unique_ptr<Accelerator>> standardDesigns();

} // namespace highlight

#endif // HIGHLIGHT_ACCEL_HARNESS_HH
