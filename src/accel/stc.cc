#include "accel/stc.hh"

#include "format/hierarchical_cp.hh"

namespace highlight
{

StcLike::StcLike(ComponentLibrary lib) : Accelerator(stcArch(), lib) {}

bool
StcLike::fitsSparseMode(const OperandSparsity &a)
{
    // The 2:4 datapath is correct for any operand whose aligned
    // 4-windows never hold more than 2 nonzeros.
    return a.kind == PatternKind::Hss &&
           worstCaseWindowOccupancy(a.hss, 4) <= 2;
}

bool
StcLike::supports(const GemmWorkload &w) const
{
    // Dense A runs in dense mode; structured A must fit 2:4.
    // Unstructured A cannot be expressed in the fixed block format.
    if (w.a.kind == PatternKind::Unstructured)
        return false;
    if (w.a.kind == PatternKind::Hss && !fitsSparseMode(w.a))
        return false;
    return true;
}

EvalResult
StcLike::evaluate(const GemmWorkload &w) const
{
    if (!supports(w)) {
        return unsupportedResult(
            w, "operand A is neither dense nor expressible as "
               "C0({G<=2}:4)");
    }

    const bool sparse_mode = fitsSparseMode(w.a);

    TrafficParams p;
    p.m = w.m;
    p.k = w.k;
    p.n = w.n;
    p.a_density = w.a.density;
    p.b_density = w.b.density;

    if (sparse_mode) {
        // A stored as 2-of-4 blocks: half the words plus a 2-bit
        // offset per stored word (the hardware pads sparser-than-2:4
        // operands with zero-valued dummy lanes).
        p.a_stored_density = 0.5;
        p.a_meta_bits_per_word = bitsFor(4);
        // Fixed 2x skipping regardless of how sparse A really is: the
        // paper's "maximum of 2x speedup" limitation.
        p.time_fraction = 0.5;
        // Only lanes holding real nonzeros do useful work; with no
        // B-side gating the dummy lanes still burn full MAC energy.
        p.effectual_mac_fraction = std::min(w.a.density, 0.5);
        p.gate_ineffectual = false;
        // Selection muxes: each lane picks its B value from the block
        // of 4 (Fig 7-style 4-to-1 selection).
        p.mux_pj_per_step =
            static_cast<double>(arch_.numMacs()) * lib_.muxSelectPj(4);
    } else {
        // Dense mode: behaves like TC, paying only the smaller GLB
        // data partition (the reserved metadata SRAM sits idle).
        p.time_fraction = 1.0;
        p.effectual_mac_fraction = 1.0;
    }

    EvalResult r = evaluateTraffic(arch_, lib_, p);
    r.workload = w.name;
    if (sparse_mode)
        r.note = "2:4 skipping mode";
    return r;
}

std::vector<BreakdownEntry>
StcLike::areaBreakdown() const
{
    auto area = baseAreaBreakdown();
    // One 4-to-1 B-select mux per MAC lane.
    area.push_back({"saf", static_cast<double>(arch_.numMacs()) *
                               lib_.muxAreaUm2(4)});
    return area;
}

} // namespace highlight
