/**
 * @file
 * S2TA-like dual-sided structured sparse accelerator model [30].
 *
 * Requires operand A in C0({G<=4}:8) — i.e. at least 50% structured
 * sparse; purely dense layers are unsupported (paper Sec 7.3). Operand
 * B runs as C0({G<=8}:8) density-bound blocks: unstructured activations
 * are dynamically bounded to the next G/8 grid point. Both sides skip,
 * so speedup multiplies, but the dual-side selection hardware and the
 * minimum-sparsity requirement are its inflexibility.
 */

#ifndef HIGHLIGHT_ACCEL_S2TA_HH
#define HIGHLIGHT_ACCEL_S2TA_HH

#include "accel/accelerator.hh"

namespace highlight
{

/** S2TA-like dual-side G:8 accelerator. */
class S2taLike : public Accelerator
{
  public:
    explicit S2taLike(ComponentLibrary lib = ComponentLibrary());

    std::string supportedPatternsA() const override
    {
        return "C0({G<=4}:8)";
    }
    std::string supportedPatternsB() const override
    {
        return "C0({G<=8}:8)";
    }

    bool supports(const GemmWorkload &w) const override;
    EvalResult evaluate(const GemmWorkload &w) const override;
    std::vector<BreakdownEntry> areaBreakdown() const override;

    /** Quantize a density up to the next G/8 grid point. */
    static int quantizeG8(double density);
};

} // namespace highlight

#endif // HIGHLIGHT_ACCEL_S2TA_HH
