#include "accel/accelerator.hh"

namespace highlight
{

Accelerator::Accelerator(ArchSpec arch, ComponentLibrary lib)
    : arch_(std::move(arch)), lib_(lib)
{
}

double
Accelerator::totalAreaUm2() const
{
    return breakdownTotal(areaBreakdown());
}

EvalResult
Accelerator::unsupportedResult(const GemmWorkload &w,
                               const std::string &why) const
{
    EvalResult r;
    r.design = name();
    r.workload = w.name;
    r.supported = false;
    r.note = why;
    return r;
}

std::vector<BreakdownEntry>
Accelerator::baseAreaBreakdown() const
{
    std::vector<BreakdownEntry> area;
    area.push_back({"mac", static_cast<double>(arch_.numMacs()) *
                               lib_.macAreaUm2()});
    area.push_back({"rf", static_cast<double>(arch_.rf_instances) *
                              lib_.rfAreaUm2(arch_.rf_kb)});
    area.push_back({"glb", lib_.sramAreaUm2(arch_.glb_data_kb)});
    if (arch_.glb_meta_kb > 0.0)
        area.push_back({"glb_metadata",
                        lib_.sramAreaUm2(arch_.glb_meta_kb)});
    // Operand/pipeline registers: two operand words per MAC lane.
    area.push_back(
        {"reg", lib_.regArrayAreaUm2(static_cast<std::int64_t>(
                    arch_.numMacs()) *
                    2 * lib_.tech().word_bits)});
    return area;
}

} // namespace highlight
