#include "accel/s2ta.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "format/hierarchical_cp.hh"
#include "model/density.hh"

namespace highlight
{

S2taLike::S2taLike(ComponentLibrary lib) : Accelerator(s2taArch(), lib) {}

int
S2taLike::quantizeG8(double density)
{
    return std::max(1, static_cast<int>(std::ceil(density * 8.0 - 1e-9)));
}

bool
S2taLike::supports(const GemmWorkload &w) const
{
    // Operand A must be structured with G <= 4 of 8 (>= 50% sparse):
    // purely dense layers and unstructured operands cannot be
    // expressed (Sec 7.2/7.3).
    if (w.a.kind != PatternKind::Hss)
        return false;
    if (worstCaseWindowOccupancy(w.a.hss, 8) > 4)
        return false;
    // Operand B: dense, unstructured (density-bound), or structured
    // all map onto {G<=8}:8 blocks.
    return true;
}

EvalResult
S2taLike::evaluate(const GemmWorkload &w) const
{
    if (!supports(w)) {
        return unsupportedResult(
            w, "operand A must be structured C0({G<=4}:8); dense or "
               "unstructured A is unsupported");
    }

    const int g_a = worstCaseWindowOccupancy(w.a.hss, 8);
    const int g_b = quantizeG8(w.b.density);

    TrafficParams p;
    p.m = w.m;
    p.k = w.k;
    p.n = w.n;
    p.a_density = w.a.density;
    p.b_density = w.b.density;

    // Both operands stored at their quantized block occupancy with
    // 3-bit intra-block offsets.
    p.a_stored_density = g_a / 8.0;
    p.a_meta_bits_per_word = bitsFor(8);
    p.b_stored_density = g_b / 8.0;
    p.b_meta_bits_per_word = bitsFor(8);

    // A-side skipping: weights are static, so the schedule can skip
    // their zero blocks — but the PE provisions 4 lanes per 8-block,
    // so the speedup saturates at 2x even for sparser operands ("does
    // not fully exploit the available speedup", Sec 7.2).
    const double time_a = std::max(g_a, 4) / 8.0;
    // B-side: both operands are sparse at the *same* rank, so turning
    // activation sparsity into time would need a sparse-sparse
    // intersection with variable-rate operand delivery — the VFMU
    // capability HighLight introduces (Sec 6.3.2) and the balance
    // problem DSSO's alternating dense ranks sidestep (Sec 7.5). The
    // rigid block schedule instead converts B sparsity into *energy*:
    // non-matching pairs are gated and B is stored compressed.
    p.time_fraction = time_a;
    p.utilization = 1.0;

    p.effectual_mac_fraction = w.a.density * w.b.density;
    p.gate_ineffectual = true;
    p.b_fetch_fraction = 1.0; // the stream already holds only G_b of 8

    // Dual-side selection: each lane muxes both its A and B operands
    // from blocks of 8.
    p.mux_pj_per_step = static_cast<double>(arch_.numMacs()) * 2.0 *
                        lib_.muxSelectPj(8);
    // The 64B register files cannot hold operands stationary: A values
    // re-stream from the GLB every step.
    p.a_stream_per_step = true;

    EvalResult r = evaluateTraffic(arch_, lib_, p);
    r.workload = w.name;
    r.note = msgOf("A as ", g_a, ":8, B as ", g_b, ":8");
    return r;
}

std::vector<BreakdownEntry>
S2taLike::areaBreakdown() const
{
    auto area = baseAreaBreakdown();
    // Two 8-to-1 muxes per MAC lane (A side and B side).
    area.push_back({"saf", static_cast<double>(arch_.numMacs()) * 2.0 *
                               lib_.muxAreaUm2(8)});
    return area;
}

} // namespace highlight
