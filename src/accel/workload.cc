#include "accel/workload.hh"

#include <sstream>

#include "common/logging.hh"

namespace highlight
{

OperandSparsity
OperandSparsity::dense()
{
    OperandSparsity s;
    s.kind = PatternKind::Dense;
    s.density = 1.0;
    return s;
}

OperandSparsity
OperandSparsity::unstructured(double density)
{
    if (density <= 0.0 || density > 1.0)
        fatal(msgOf("OperandSparsity::unstructured: density ", density));
    OperandSparsity s;
    s.kind = PatternKind::Unstructured;
    s.density = density;
    return s;
}

OperandSparsity
OperandSparsity::structured(const HssSpec &spec)
{
    OperandSparsity s;
    s.kind = PatternKind::Hss;
    s.density = spec.density();
    s.hss = spec;
    return s;
}

std::string
OperandSparsity::str() const
{
    std::ostringstream oss;
    switch (kind) {
      case PatternKind::Dense:
        oss << "dense";
        break;
      case PatternKind::Unstructured:
        oss << "unstructured(d=" << density << ")";
        break;
      case PatternKind::Hss:
        oss << hss.str();
        break;
    }
    return oss.str();
}

double
GemmWorkload::denseMacs() const
{
    return static_cast<double>(m) * static_cast<double>(k) *
           static_cast<double>(n);
}

GemmWorkload
GemmWorkload::swapped() const
{
    GemmWorkload w = *this;
    std::swap(w.a, w.b);
    std::swap(w.m, w.n);
    w.name = name + " (swapped)";
    return w;
}

std::string
GemmWorkload::str() const
{
    std::ostringstream oss;
    oss << name << ": " << m << "x" << k << "x" << n << " A=" << a.str()
        << " B=" << b.str();
    return oss.str();
}

std::vector<GemmWorkload>
syntheticSuite()
{
    const auto supports = highlightWeightSupport();
    std::vector<GemmWorkload> suite;
    const std::int64_t dim = 1024;
    const double a_sparsities[] = {0.0, 0.5, 0.75};
    const double b_sparsities[] = {0.0, 0.25, 0.5, 0.75};
    for (double sa : a_sparsities) {
        for (double sb : b_sparsities) {
            GemmWorkload w;
            w.m = w.k = w.n = dim;
            std::ostringstream name;
            name << "A" << static_cast<int>(sa * 100) << "%-B"
                 << static_cast<int>(sb * 100) << "%";
            w.name = name.str();
            if (sa == 0.0) {
                w.a = OperandSparsity::dense();
            } else {
                w.a = OperandSparsity::structured(
                    chooseSpecForDensity(supports, 1.0 - sa));
            }
            w.b = sb == 0.0 ? OperandSparsity::dense()
                            : OperandSparsity::unstructured(1.0 - sb);
            suite.push_back(w);
        }
    }
    return suite;
}

} // namespace highlight
