#include "core/frontier_io.hh"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/pareto.hh"

namespace highlight
{

namespace
{

/**
 * Extract the value after `"name": ` in `line` starting at *pos.
 * Strings are unescaped (\" and \\); numbers parse with strtod, so
 * max_digits10 dumps round-trip bit-exactly. Advances *pos past the
 * value on success.
 */
bool
takeStringField(const std::string &line, const std::string &name,
                std::size_t *pos, std::string *out)
{
    const std::string tag = "\"" + name + "\": \"";
    const auto at = line.find(tag, *pos);
    if (at == std::string::npos)
        return false;
    out->clear();
    std::size_t i = at + tag.size();
    while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
            if (i + 1 >= line.size())
                return false;
            ++i;
        }
        *out += line[i++];
    }
    if (i >= line.size())
        return false; // unterminated string
    *pos = i + 1;
    return true;
}

bool
takeNumberField(const std::string &line, const std::string &name,
                std::size_t *pos, double *out)
{
    const std::string tag = "\"" + name + "\": ";
    const auto at = line.find(tag, *pos);
    if (at == std::string::npos)
        return false;
    const char *start = line.c_str() + at + tag.size();
    char *end = nullptr;
    *out = std::strtod(start, &end);
    if (end == start)
        return false;
    *pos = static_cast<std::size_t>(end - line.c_str());
    return true;
}

} // namespace

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

bool
writeFrontierJson(const std::string &path,
                  const std::vector<FrontierEntry> &frontier)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << std::setprecision(17);
    out << "[\n";
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        const FrontierEntry &f = frontier[i];
        out << "  {\"model\": " << jsonQuote(f.model)
            << ", \"design\": " << jsonQuote(f.design)
            << ", \"accuracy_loss\": " << f.accuracy_loss
            << ", \"norm_edp\": " << f.norm_edp << "}"
            << (i + 1 < frontier.size() ? "," : "") << "\n";
    }
    out << "]\n";
    return static_cast<bool>(out);
}

bool
readFrontierJson(const std::string &path,
                 std::vector<FrontierEntry> *out)
{
    out->clear();
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    bool saw_open = false, saw_close = false;
    while (std::getline(in, line)) {
        if (line == "[") {
            saw_open = true;
            continue;
        }
        if (line == "]") {
            saw_close = true;
            continue;
        }
        if (line.empty())
            continue;
        // One entry per line, exactly as writeFrontierJson emits.
        FrontierEntry e;
        std::size_t pos = 0;
        if (!saw_open || saw_close ||
            !takeStringField(line, "model", &pos, &e.model) ||
            !takeStringField(line, "design", &pos, &e.design) ||
            !takeNumberField(line, "accuracy_loss", &pos,
                             &e.accuracy_loss) ||
            !takeNumberField(line, "norm_edp", &pos, &e.norm_edp)) {
            out->clear();
            return false;
        }
        out->push_back(std::move(e));
    }
    if (!saw_open || !saw_close) {
        out->clear();
        return false;
    }
    return true;
}

std::vector<FrontierEntry>
frontierOf(const std::vector<FrontierEntry> &points)
{
    // Group per model, preserving first-appearance model order and
    // within-model input order — the exact iteration order of the
    // single-process drivers (model-major sweep, candidate order
    // within a model).
    std::vector<std::string> model_order;
    for (const auto &p : points) {
        bool seen = false;
        for (const auto &m : model_order)
            seen |= m == p.model;
        if (!seen)
            model_order.push_back(p.model);
    }

    std::vector<FrontierEntry> frontier;
    for (const auto &model : model_order) {
        std::vector<ParetoPoint> model_points;
        std::vector<const FrontierEntry *> model_entries;
        for (const auto &p : points) {
            if (p.model != model)
                continue;
            model_points.push_back(
                {p.accuracy_loss, p.norm_edp, p.design});
            model_entries.push_back(&p);
        }
        const auto mask = frontierMask(model_points);
        for (std::size_t i = 0; i < model_entries.size(); ++i) {
            if (mask[i])
                frontier.push_back(*model_entries[i]);
        }
    }
    return frontier;
}

} // namespace highlight
