#include "core/frontier_io.hh"

#include <fstream>
#include <iomanip>
#include <utility>

#include "core/pareto.hh"
#include "io/artifact_file.hh"

namespace highlight
{

bool
writeFrontierJson(const std::string &path,
                  const std::vector<FrontierEntry> &frontier)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << std::setprecision(17);
    out << "[\n";
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        const FrontierEntry &f = frontier[i];
        out << "  {\"model\": " << jsonQuote(f.model)
            << ", \"design\": " << jsonQuote(f.design)
            << ", \"accuracy_loss\": " << f.accuracy_loss
            << ", \"norm_edp\": " << f.norm_edp << "}"
            << (i + 1 < frontier.size() ? "," : "") << "\n";
    }
    out << "]\n";
    return static_cast<bool>(out);
}

bool
readFrontierJson(const std::string &path,
                 std::vector<FrontierEntry> *out)
{
    out->clear();
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    bool saw_open = false, saw_close = false;
    while (std::getline(in, line)) {
        if (line == "[") {
            saw_open = true;
            continue;
        }
        if (line == "]") {
            saw_close = true;
            continue;
        }
        if (line.empty())
            continue;
        // One entry per line, exactly as writeFrontierJson emits.
        FrontierEntry e;
        std::size_t pos = 0;
        if (!saw_open || saw_close ||
            !takeJsonString(line, "model", &pos, &e.model) ||
            !takeJsonString(line, "design", &pos, &e.design) ||
            !takeJsonNumber(line, "accuracy_loss", &pos,
                            &e.accuracy_loss) ||
            !takeJsonNumber(line, "norm_edp", &pos, &e.norm_edp)) {
            out->clear();
            return false;
        }
        out->push_back(std::move(e));
    }
    if (!saw_open || !saw_close) {
        out->clear();
        return false;
    }
    return true;
}

namespace
{

const char kFrontierKind[] = "frontier";

bool
writeFrontierBinary(const std::string &path,
                    const std::vector<FrontierEntry> &frontier)
{
    std::vector<std::string> model(frontier.size());
    std::vector<std::string> design(frontier.size());
    std::vector<double> accuracy_loss(frontier.size());
    std::vector<double> norm_edp(frontier.size());
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        model[i] = frontier[i].model;
        design[i] = frontier[i].design;
        accuracy_loss[i] = frontier[i].accuracy_loss;
        norm_edp[i] = frontier[i].norm_edp;
    }
    ArtifactWriter writer(kFrontierKind, kFrontierFileVersion);
    writer.addStr("model", model);
    writer.addStr("design", design);
    writer.addF64("accuracy_loss", accuracy_loss);
    writer.addF64("norm_edp", norm_edp);
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    if (!out)
        return false;
    return writer.writeTo(out);
}

bool
readFrontierBinary(const std::string &path,
                   std::vector<FrontierEntry> *out)
{
    ArtifactReader reader;
    if (reader.open(path, kFrontierKind, kFrontierFileVersion) !=
        ArtifactReader::Status::Ok)
        return false;
    const auto *model = reader.str("model");
    const auto *design = reader.str("design");
    const auto *accuracy_loss = reader.f64("accuracy_loss");
    const auto *norm_edp = reader.f64("norm_edp");
    if (!model || !design || !accuracy_loss || !norm_edp ||
        design->size() != model->size() ||
        accuracy_loss->size() != model->size() ||
        norm_edp->size() != model->size())
        return false;
    std::vector<FrontierEntry> staged(model->size());
    for (std::size_t i = 0; i < model->size(); ++i)
        staged[i] = {(*model)[i], (*design)[i], (*accuracy_loss)[i],
                     (*norm_edp)[i]};
    *out = std::move(staged);
    return true;
}

} // namespace

bool
writeFrontierFile(const std::string &path,
                  const std::vector<FrontierEntry> &frontier,
                  ArtifactFormat format)
{
    return format == ArtifactFormat::Text
               ? writeFrontierJson(path, frontier)
               : writeFrontierBinary(path, frontier);
}

bool
readFrontierFile(const std::string &path,
                 std::vector<FrontierEntry> *out)
{
    out->clear();
    if (isArtifactFile(path)) {
        if (readFrontierBinary(path, out))
            return true;
        out->clear();
        return false;
    }
    return readFrontierJson(path, out);
}

std::vector<FrontierEntry>
frontierOf(const std::vector<FrontierEntry> &points)
{
    // Group per model, preserving first-appearance model order and
    // within-model input order — the exact iteration order of the
    // single-process drivers (model-major sweep, candidate order
    // within a model).
    std::vector<std::string> model_order;
    for (const auto &p : points) {
        bool seen = false;
        for (const auto &m : model_order)
            seen |= m == p.model;
        if (!seen)
            model_order.push_back(p.model);
    }

    std::vector<FrontierEntry> frontier;
    for (const auto &model : model_order) {
        std::vector<ParetoPoint> model_points;
        std::vector<const FrontierEntry *> model_entries;
        for (const auto &p : points) {
            if (p.model != model)
                continue;
            model_points.push_back(
                {p.accuracy_loss, p.norm_edp, p.design});
            model_entries.push_back(&p);
        }
        const auto mask = frontierMask(model_points);
        for (std::size_t i = 0; i < model_entries.size(); ++i) {
            if (mask[i])
                frontier.push_back(*model_entries[i]);
        }
    }
    return frontier;
}

} // namespace highlight
