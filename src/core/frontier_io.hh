/**
 * @file
 * Pareto-frontier point dumps: the fig15-style `--frontier-json`
 * format, readable and writable from both the figure drivers and the
 * sharded-sweep supervisor.
 *
 * The text format is a JSON array of {model, design, accuracy_loss,
 * norm_edp} objects with doubles printed at max_digits10, so a
 * byte-compare of two dumps is a bit-identity check on the values.
 * That property is what the sharding story rests on: each shard of a
 * multi-process sweep dumps its candidates' *points*, the supervisor
 * merges them (model-major, shard order) and extracts the frontier
 * with frontierOf(), and the result must be byte-identical to the
 * single-process sweep's frontier dump — the ctest-asserted soundness
 * check for sharding, mirroring what compare_prune.cmake asserts for
 * pruning.
 *
 * Dumps can also travel as ArtifactFile containers (kind "frontier"),
 * which carry the doubles as raw bit patterns — trivially bit-exact —
 * and are what the shard supervisor exchanges with its shards.
 * readFrontierFile auto-detects the format, so either side can be
 * text when a human needs to look at it.
 */

#ifndef HIGHLIGHT_CORE_FRONTIER_IO_HH
#define HIGHLIGHT_CORE_FRONTIER_IO_HH

#include <string>
#include <vector>

#include "io/codec.hh"
#include "io/json.hh"

namespace highlight
{

/** Bumped whenever the frontier entry schema changes. */
constexpr int kFrontierFileVersion = 1;

/** One evaluated point (or frontier member) of a fig15-style sweep. */
struct FrontierEntry
{
    std::string model;
    std::string design;
    double accuracy_loss = 0.0;
    double norm_edp = 0.0;
};

/**
 * Dump entries as a JSON array (full-precision doubles: byte-equal
 * dumps iff bit-equal values). False when the file cannot be written.
 */
bool writeFrontierJson(const std::string &path,
                       const std::vector<FrontierEntry> &frontier);

/**
 * Parse a writeFrontierJson dump. Strict: false on any malformed
 * entry (leaving *out cleared), so a supervisor merging shard dumps
 * fails loudly instead of silently dropping a shard's points. The
 * doubles round-trip bit-exactly (max_digits10 print + strtod).
 */
bool readFrontierJson(const std::string &path,
                      std::vector<FrontierEntry> *out);

/** writeFrontierJson, or the ArtifactFile container, per `format`. */
bool writeFrontierFile(const std::string &path,
                       const std::vector<FrontierEntry> &frontier,
                       ArtifactFormat format);

/**
 * Read a frontier dump in whichever format it was written (container
 * magic sniff). Same strictness as readFrontierJson: false with *out
 * cleared on any corruption — no partial loads.
 */
bool readFrontierFile(const std::string &path,
                      std::vector<FrontierEntry> *out);

/**
 * The Pareto frontier over a set of evaluated points, grouped per
 * model: within each model (first-appearance order preserved) an
 * entry survives iff no other same-model entry dominates it (lower is
 * better on both axes; same dominance as core/pareto.hh). Input order
 * is preserved, so feeding the model-major concatenation of shard
 * dumps yields the exact frontier (and byte-identical re-dump) of the
 * single-process sweep.
 */
std::vector<FrontierEntry> frontierOf(
    const std::vector<FrontierEntry> &points);

} // namespace highlight

#endif // HIGHLIGHT_CORE_FRONTIER_IO_HH
