/**
 * @file
 * HSS design-space exploration (paper Sec 5, Fig 6) and the
 * Pareto-pruned evaluation sweep (Fig 15 with --prune).
 *
 * Given candidate hardware configurations — how many HSS ranks, which
 * fixed G and H range per rank, and how the SAFs are laid out across
 * PEs and arrays — the explorer reports each design's supported
 * sparsity degrees, its per-rank Hmax, its relative processing latency
 * at each degree, and its muxing sparsity tax. This regenerates the
 * S-vs-SS comparison of Fig 6(a)/(b) and the rank-count ablation.
 *
 * paretoSweep() is the service-backed sweep with early-exit pruning:
 * candidates whose x coordinate (accuracy loss) is known up front
 * stream their y coordinate (EDP) as a monotonically growing
 * layer-order prefix sum, and as soon as a completed candidate
 * strictly dominates another candidate's prefix *lower bound*, the
 * dominated candidate's remaining evaluations are cancelled on the
 * EvalService — reclaiming worker time without ever changing the
 * Pareto frontier.
 */

#ifndef HIGHLIGHT_CORE_EXPLORER_HH
#define HIGHLIGHT_CORE_EXPLORER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluator.hh"
#include "energy/mux_model.hh"
#include "sparsity/hss.hh"

namespace highlight
{

/** One candidate HSS hardware design. */
struct HssDesignConfig
{
    std::string name;
    /** Per-rank support, rank 0 first. */
    std::vector<RankSupport> supports;
    int num_pes = 2;
    int num_arrays = 1;
};

/** Exploration report for one design. */
struct HssDesignReport
{
    std::string name;
    std::size_t num_ranks = 0;
    std::vector<int> hmax_per_rank;       ///< Rank 0 first.
    std::vector<HssDegree> degrees;       ///< Descending density.
    long total_mux2 = 0;                  ///< 2:1-mux equivalents.
    double mux_area_um2 = 0.0;
    double mux_energy_per_step_pj = 0.0;

    /** Relative processing latency at each degree (= density). */
    std::vector<double> latencies() const;
};

/**
 * One candidate of a Pareto-pruned sweep: its x coordinate (lower is
 * better, e.g. accuracy loss) is known before evaluation; its y
 * coordinate (lower is better, e.g. EDP) is the energy-delay product
 * of the layer-order sums over `jobs`.
 */
struct ParetoCandidate
{
    std::string label;
    double x = 0.0;
    std::vector<EvalJob> jobs;
    /** Exempt from pruning — e.g. the normalization baseline, which
     *  downstream reporting needs completed unconditionally. */
    bool never_prune = false;
};

/** Per-candidate outcome of a Pareto-pruned sweep. */
struct ParetoCandidateOutcome
{
    std::string label;
    double x = 0.0;
    /** Layer-order sums — the exact floating-point accumulation
     *  sequence of Evaluator::runDnn, so a completed candidate's
     *  totals are bit-identical to an exhaustive run's. */
    double total_energy_pj = 0.0;
    double total_cycles = 0.0;
    bool completed = false; ///< Every job landed, all supported.
    bool supported = true;  ///< False: some layer was unsupported.
    bool pruned = false;    ///< Cancelled by dominance before finishing.
    std::string note;       ///< Why unsupported / which point pruned it.

    /** Same formula (and FP sequence) as DnnEvalResult::edp(). While
     *  the candidate is incomplete this is a sound lower bound on the
     *  final EDP: the sums only ever grow. */
    double edp() const;
};

/** Work accounting of one paretoSweep() call. */
struct ParetoSweepStats
{
    std::size_t jobs_submitted = 0;
    /** Jobs of pruned candidates never even submitted: the sweep
     *  keeps a bounded window per candidate in flight, so a pruned
     *  tail is skipped at the source rather than queued-then-
     *  cancelled. */
    std::size_t jobs_skipped = 0;
    std::uint64_t tickets_cancelled = 0;
    /** Service-level queued computations dropped before running. */
    std::uint64_t evaluations_saved = 0;

    /** Total work pruning reclaimed: skipped + dropped-while-queued. */
    std::uint64_t reclaimed() const
    {
        return jobs_skipped + evaluations_saved;
    }
};

/** Result of paretoSweep(): outcomes in candidate input order. */
struct ParetoSweepResult
{
    std::vector<ParetoCandidateOutcome> outcomes;
    ParetoSweepStats stats;
};

/**
 * The explorer.
 */
class DesignSpaceExplorer
{
  public:
    explicit DesignSpaceExplorer(
        ComponentLibrary lib = ComponentLibrary());

    /** Analyze one configuration. */
    HssDesignReport analyze(const HssDesignConfig &config) const;

    /**
     * Analyze a batch of configurations on the global thread pool.
     * Results come back in input order, bit-identical to calling
     * analyze() serially on each config.
     */
    std::vector<HssDesignReport> analyzeMany(
        const std::vector<HssDesignConfig> &configs) const;

    /**
     * Streaming analyzeMany: on_report(index, report) fires as each
     * config's analysis lands (on whichever worker produced it, under
     * an internal lock — callbacks never overlap). The returned
     * vector is still in input order and bit-identical to the
     * non-streaming overload; only the callback order is
     * scheduling-dependent.
     */
    std::vector<HssDesignReport> analyzeMany(
        const std::vector<HssDesignConfig> &configs,
        const std::function<void(std::size_t, const HssDesignReport &)>
            &on_report) const;

    /**
     * Evaluate every candidate through the evaluator's async service
     * with early-exit Pareto pruning. Candidates are submitted lowest
     * x first at descending priority (likely dominators finish
     * early), each with a bounded window of jobs in flight that tops
     * up as results stream back; the candidate's y accumulates as a
     * layer-order prefix sum. When `prune` is set and a completed
     * candidate's EDP at no-worse x strictly undercuts another
     * candidate's prefix EDP, the dominated candidate is retired
     * three ways at once: its unsubmitted tail is skipped
     * (stats.jobs_skipped), its queued evaluations are dropped on the
     * service (stats.evaluations_saved), and its in-flight dedupe
     * tickets detach without disturbing sibling candidates sharing
     * the same layer shapes.
     *
     * Pruning is sound for frontier extraction: only candidates that
     * provably cannot be on the Pareto frontier are retired (the
     * prefix sums only grow, so a dominated lower bound stays
     * dominated), so the frontier over the completed outcomes —
     * values bit-identical to an exhaustive run at any worker
     * count — equals the exhaustive frontier.
     *
     * Needs exclusive use of the evaluator's service while it drains
     * (same caveat as the streaming runBatch).
     */
    ParetoSweepResult paretoSweep(
        const Evaluator &ev,
        const std::vector<ParetoCandidate> &candidates,
        bool prune) const;

    /**
     * Deterministic candidate partition for sharded multi-process
     * sweeps: the contiguous half-open range [begin, end) of
     * candidates owned by shard `index` of `count`. A pure function
     * of (total, index, count) — every shard computes the same
     * partition with no coordination, ranges are disjoint, their
     * union covers [0, total), and sizes differ by at most one
     * (floor(total*i/count) boundaries). count must be >= 1 and
     * index in [0, count); violations are fatal.
     */
    static std::pair<std::size_t, std::size_t> shardRange(
        std::size_t total, int index, int count);

    /** Fig 6's one-rank design S: 2:{2..16}, 2 PEs. */
    static HssDesignConfig designS();

    /** Fig 6's two-rank design SS: 2:{2..8} x 2:{2..4}, 2 PEs. */
    static HssDesignConfig designSS();

    /**
     * Rank-count ablation: designs with 1..3 ranks covering at least
     * `min_degrees` distinct degrees down to `min_density`, choosing
     * the smallest Hmax values that reach the target.
     */
    std::vector<HssDesignReport> rankAblation(int min_degrees,
                                              double min_density) const;

  private:
    ComponentLibrary lib_;
};

} // namespace highlight

#endif // HIGHLIGHT_CORE_EXPLORER_HH
