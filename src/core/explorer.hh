/**
 * @file
 * HSS design-space exploration (paper Sec 5, Fig 6).
 *
 * Given candidate hardware configurations — how many HSS ranks, which
 * fixed G and H range per rank, and how the SAFs are laid out across
 * PEs and arrays — the explorer reports each design's supported
 * sparsity degrees, its per-rank Hmax, its relative processing latency
 * at each degree, and its muxing sparsity tax. This regenerates the
 * S-vs-SS comparison of Fig 6(a)/(b) and the rank-count ablation.
 */

#ifndef HIGHLIGHT_CORE_EXPLORER_HH
#define HIGHLIGHT_CORE_EXPLORER_HH

#include <functional>
#include <string>
#include <vector>

#include "energy/mux_model.hh"
#include "sparsity/hss.hh"

namespace highlight
{

/** One candidate HSS hardware design. */
struct HssDesignConfig
{
    std::string name;
    /** Per-rank support, rank 0 first. */
    std::vector<RankSupport> supports;
    int num_pes = 2;
    int num_arrays = 1;
};

/** Exploration report for one design. */
struct HssDesignReport
{
    std::string name;
    std::size_t num_ranks = 0;
    std::vector<int> hmax_per_rank;       ///< Rank 0 first.
    std::vector<HssDegree> degrees;       ///< Descending density.
    long total_mux2 = 0;                  ///< 2:1-mux equivalents.
    double mux_area_um2 = 0.0;
    double mux_energy_per_step_pj = 0.0;

    /** Relative processing latency at each degree (= density). */
    std::vector<double> latencies() const;
};

/**
 * The explorer.
 */
class DesignSpaceExplorer
{
  public:
    explicit DesignSpaceExplorer(
        ComponentLibrary lib = ComponentLibrary());

    /** Analyze one configuration. */
    HssDesignReport analyze(const HssDesignConfig &config) const;

    /**
     * Analyze a batch of configurations on the global thread pool.
     * Results come back in input order, bit-identical to calling
     * analyze() serially on each config.
     */
    std::vector<HssDesignReport> analyzeMany(
        const std::vector<HssDesignConfig> &configs) const;

    /**
     * Streaming analyzeMany: on_report(index, report) fires as each
     * config's analysis lands (on whichever worker produced it, under
     * an internal lock — callbacks never overlap). The returned
     * vector is still in input order and bit-identical to the
     * non-streaming overload; only the callback order is
     * scheduling-dependent.
     */
    std::vector<HssDesignReport> analyzeMany(
        const std::vector<HssDesignConfig> &configs,
        const std::function<void(std::size_t, const HssDesignReport &)>
            &on_report) const;

    /** Fig 6's one-rank design S: 2:{2..16}, 2 PEs. */
    static HssDesignConfig designS();

    /** Fig 6's two-rank design SS: 2:{2..8} x 2:{2..4}, 2 PEs. */
    static HssDesignConfig designSS();

    /**
     * Rank-count ablation: designs with 1..3 ranks covering at least
     * `min_degrees` distinct degrees down to `min_density`, choosing
     * the smallest Hmax values that reach the target.
     */
    std::vector<HssDesignReport> rankAblation(int min_degrees,
                                              double min_density) const;

  private:
    ComponentLibrary lib_;
};

} // namespace highlight

#endif // HIGHLIGHT_CORE_EXPLORER_HH
