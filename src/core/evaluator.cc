#include "core/evaluator.hh"

#include <algorithm>
#include <cmath>

#include "accel/dsso.hh"
#include "common/logging.hh"

namespace highlight
{

double
DnnEvalResult::edp() const
{
    const double seconds = total_cycles / 1e9; // 1 GHz clock
    return total_energy_pj * 1e-12 * seconds;
}

Evaluator::Evaluator() : Evaluator(EvalCacheConfig::fromEnv())
{
}

Evaluator::Evaluator(const EvalCacheConfig &cache_config)
    : cache_(cache_config)
{
    owned_ = standardDesigns();
    owned_.push_back(std::make_unique<DssoAccel>());
}

std::vector<const Accelerator *>
Evaluator::designs() const
{
    std::vector<const Accelerator *> out;
    for (const auto &d : owned_)
        out.push_back(d.get());
    return out;
}

std::vector<const Accelerator *>
Evaluator::standardLineup() const
{
    std::vector<const Accelerator *> out;
    for (const auto &d : owned_) {
        if (d->name() != "DSSO")
            out.push_back(d.get());
    }
    return out;
}

const Accelerator &
Evaluator::design(const std::string &name) const
{
    for (const auto &d : owned_) {
        if (d->name() == name)
            return *d;
    }
    fatal(msgOf("Evaluator: unknown design ", name));
}

EvalResult
Evaluator::run(const std::string &design_name,
               const GemmWorkload &w) const
{
    // Through the service, not cache_.evaluate() directly, so a run()
    // racing a runBatch() with the same key shares the in-flight
    // computation and the exactly-one-miss-per-unique-key stats
    // contract holds across every entry point.
    return runner().run({{&design(design_name), w}}).front();
}

BatchRunner &
Evaluator::runner() const
{
    // Lazy so the worker count reflects the global pool (and thus any
    // --serial / HIGHLIGHT_THREADS pin) at first use, not at
    // construction.
    MutexLock lock(runner_mu_);
    if (!runner_)
        runner_ = std::make_unique<BatchRunner>(&cache_);
    // Dereferenced under the lock; the BatchRunner itself is
    // internally synchronized, so handing out the reference is safe
    // once the unique_ptr is populated (it is never reset).
    return *runner_;
}

std::vector<EvalResult>
Evaluator::runBatch(const std::vector<EvalJob> &jobs) const
{
    return runner().run(jobs);
}

std::vector<EvalResult>
Evaluator::runBatch(
    const std::vector<EvalJob> &jobs,
    const std::function<void(std::size_t, const EvalResult &)> &on_result)
    const
{
    return runner().run(jobs, on_result);
}

std::vector<EvalResult>
Evaluator::runBatch(
    const std::vector<EvalJob> &jobs,
    const std::function<void(std::size_t, const EvalResult &,
                             BatchRunner::Stream &)> &on_result,
    int priority) const
{
    return runner().run(jobs, on_result, priority);
}

EvalService::Ticket
Evaluator::submit(const EvalJob &job, int priority) const
{
    return service().submit(job, priority);
}

bool
Evaluator::cancel(EvalService::Ticket ticket) const
{
    return service().cancel(ticket);
}

EvalService &
Evaluator::service() const
{
    return runner().service();
}

namespace
{

/**
 * A one-rank G:H spec matching the target density on the design's
 * native block size (STC: H = 4, S2TA-style: H = 8). G rounds down so
 * the pruned operand is at least as sparse as requested.
 */
HssSpec
oneRankSpecFor(const std::string &design, double target_density)
{
    const int h = design == "STC" ? 4 : 8;
    int g = static_cast<int>(std::floor(target_density * h + 1e-9));
    g = std::clamp(g, 1, h);
    return HssSpec({GhPattern(g, h)});
}

} // namespace

std::vector<GemmWorkload>
Evaluator::buildDnnWorkloads(const DnnModel &model,
                             const DnnScenario &scenario) const
{
    std::vector<GemmWorkload> suite;
    for (const auto &layer : model.layers) {
        GemmWorkload w;
        w.name = model.name + "/" + layer.name;
        w.m = layer.m;
        w.k = layer.k;
        w.n = layer.n;
        w.b = OperandSparsity::unstructured(model.activation_density);

        const bool prune = layer.prunable &&
                           scenario.weight_sparsity > 0.0 &&
                           scenario.approach != PruningApproach::Dense;
        if (!prune) {
            w.a = OperandSparsity::dense();
        } else {
            const double density = 1.0 - scenario.weight_sparsity;
            switch (scenario.approach) {
              case PruningApproach::Unstructured:
                w.a = OperandSparsity::unstructured(density);
                break;
              case PruningApproach::OneRankGh:
                w.a = OperandSparsity::structured(
                    oneRankSpecFor(scenario.design, density));
                break;
              case PruningApproach::Hss:
                w.a = OperandSparsity::structured(chooseSpecForDensity(
                    highlightWeightSupport(), density));
                break;
              case PruningApproach::Channel:
                // Channel pruning removes whole output channels: the
                // GEMM simply shrinks along M and stays dense.
                w.m = std::max<std::int64_t>(
                    1, static_cast<std::int64_t>(
                           std::llround(layer.m * density)));
                w.a = OperandSparsity::dense();
                break;
              case PruningApproach::Dense:
                w.a = OperandSparsity::dense();
                break;
            }
        }
        suite.push_back(std::move(w));
    }
    return suite;
}

DnnEvalResult
Evaluator::runDnn(const DnnModel &model, DnnName accuracy_model,
                  const DnnScenario &scenario) const
{
    DnnEvalResult out;
    out.design = scenario.design;
    out.accuracy_loss = AccuracyModel::loss(
        accuracy_model, scenario.approach, scenario.weight_sparsity);

    const auto suite = buildDnnWorkloads(model, scenario);
    const Accelerator &accel = design(scenario.design);

    // Evaluate all layers concurrently (deduped through the cache),
    // then reduce serially in layer order: the accumulation below is
    // the same floating-point sequence as the old serial loop.
    std::vector<EvalJob> jobs;
    jobs.reserve(suite.size());
    for (const auto &w : suite)
        jobs.push_back({&accel, w});
    std::vector<EvalResult> results = runBatch(jobs);

    for (EvalResult &r : results) {
        if (!r.supported) {
            // A design that cannot run every layer cannot run the
            // network (Fig 15: S2TA fails on attention models' dense
            // layers). First failing layer in layer order wins, as in
            // the serial early-exit path.
            out.supported = false;
            out.note = msgOf("layer ", r.workload, ": ", r.note);
            out.per_layer.clear();
            out.total_energy_pj = 0.0;
            out.total_cycles = 0.0;
            return out;
        }
        out.total_energy_pj += r.totalEnergyPj();
        out.total_cycles += r.cycles;
        out.per_layer.push_back(std::move(r));
    }
    return out;
}

} // namespace highlight
