#include "core/pareto.hh"

#include <algorithm>
#include <numeric>

namespace highlight
{

namespace
{

/** a dominates b: a is <= in both coords and < in at least one. */
bool
dominates(const ParetoPoint &a, const ParetoPoint &b)
{
    return a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y);
}

} // namespace

std::vector<std::size_t>
paretoFrontier(const std::vector<ParetoPoint> &points)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated; ++j)
            dominated = j != i && dominates(points[j], points[i]);
        if (!dominated)
            frontier.push_back(i);
    }
    std::sort(frontier.begin(), frontier.end(),
              [&points](std::size_t a, std::size_t b) {
                  if (points[a].x != points[b].x)
                      return points[a].x < points[b].x;
                  return points[a].y < points[b].y;
              });
    return frontier;
}

bool
onFrontier(const std::vector<ParetoPoint> &points, std::size_t i)
{
    const auto frontier = paretoFrontier(points);
    return std::find(frontier.begin(), frontier.end(), i) !=
           frontier.end();
}

} // namespace highlight
