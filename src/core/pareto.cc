#include "core/pareto.hh"

#include <algorithm>
#include <numeric>

#include "runtime/thread_pool.hh"

namespace highlight
{

namespace
{

/** a dominates b: a is <= in both coords and < in at least one. */
bool
dominates(const ParetoPoint &a, const ParetoPoint &b)
{
    return a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y);
}

/** Point count below which the pool dispatch costs more than it saves. */
constexpr std::size_t kParallelThreshold = 256;

bool
isDominated(const std::vector<ParetoPoint> &points, std::size_t i)
{
    for (std::size_t j = 0; j < points.size(); ++j) {
        if (j != i && dominates(points[j], points[i]))
            return true;
    }
    return false;
}

} // namespace

std::vector<bool>
frontierMask(const std::vector<ParetoPoint> &points)
{
    const std::size_t n = points.size();
    std::vector<bool> mask(n, false);
    if (n < kParallelThreshold) {
        for (std::size_t i = 0; i < n; ++i)
            mask[i] = !isDominated(points, i);
        return mask;
    }
    // std::vector<bool> packs bits, so concurrent writes to mask[i]
    // would race; compute into a byte vector and convert.
    const std::vector<char> bytes = ThreadPool::global().parallelMap(
        n, [&](std::size_t i) -> char { return !isDominated(points, i); });
    for (std::size_t i = 0; i < n; ++i)
        mask[i] = bytes[i] != 0;
    return mask;
}

std::vector<std::size_t>
paretoFrontier(const std::vector<ParetoPoint> &points)
{
    const auto mask = frontierMask(points);
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (mask[i])
            frontier.push_back(i);
    }
    std::sort(frontier.begin(), frontier.end(),
              [&points](std::size_t a, std::size_t b) {
                  if (points[a].x != points[b].x)
                      return points[a].x < points[b].x;
                  return points[a].y < points[b].y;
              });
    return frontier;
}

bool
onFrontier(const std::vector<ParetoPoint> &points, std::size_t i)
{
    return frontierMask(points)[i];
}

} // namespace highlight
