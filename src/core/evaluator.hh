/**
 * @file
 * The top-level evaluation API.
 *
 * Owns one instance of every accelerator model and exposes the
 * paper-style experiments: run a workload (with operand swapping),
 * run a suite, build the per-design DNN workloads of Fig 2/15 (each
 * design prunes the DNN to its own supported pattern at a comparable
 * accuracy level), and normalize everything to the dense TC baseline.
 */

#ifndef HIGHLIGHT_CORE_EVALUATOR_HH
#define HIGHLIGHT_CORE_EVALUATOR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/harness.hh"
#include "accuracy/accuracy_model.hh"
#include "common/mutex.hh"
#include "dnn/layer.hh"
#include "runtime/batch_runner.hh"

namespace highlight
{

/** Per-design weight-sparsity choice for a DNN evaluation. */
struct DnnScenario
{
    std::string design;           ///< Accelerator name.
    PruningApproach approach = PruningApproach::Dense;
    double weight_sparsity = 0.0; ///< Applied to prunable layers.
};

/** One design's aggregate over a DNN's layers. */
struct DnnEvalResult
{
    std::string design;
    double accuracy_loss = 0.0;
    double total_energy_pj = 0.0;
    double total_cycles = 0.0;
    bool supported = true;
    std::string note;
    std::vector<EvalResult> per_layer;

    double edp() const; ///< J*s over the whole network.
};

/**
 * Owns the design lineup and runs experiments.
 */
class Evaluator
{
  public:
    /**
     * Builds TC, STC, S2TA, DSTC, HighLight and DSSO. The memo cache
     * is configured from the environment (HIGHLIGHT_CACHE_CAP bounds
     * it, HIGHLIGHT_CACHE_FILE makes it persistent and pre-loads it).
     */
    Evaluator();

    /** Same lineup with an explicit cache configuration. */
    explicit Evaluator(const EvalCacheConfig &cache_config);

    /** All designs (stable order: TC, STC, S2TA, DSTC, HighLight, DSSO). */
    std::vector<const Accelerator *> designs() const;

    /** The standard five-design comparison lineup (no DSSO). */
    std::vector<const Accelerator *> standardLineup() const;

    /** Look up a design by name; fatal if absent. */
    const Accelerator &design(const std::string &name) const;

    /**
     * Evaluate one workload on one design with operand swapping
     * (memoized through the evaluator's cache). Routed through the
     * shared async service — starting its worker crew on first use —
     * so a run() racing a runBatch() on the same key shares the
     * in-flight evaluation and the cache stats stay exact.
     */
    EvalResult run(const std::string &design_name,
                   const GemmWorkload &w) const;

    /**
     * Evaluate a batch of heterogeneous (design, workload) jobs on
     * the evaluator's async service through the cache. Results come
     * back in input order and are bit-identical to evaluating each
     * job serially, independent of the worker count.
     */
    std::vector<EvalResult> runBatch(
        const std::vector<EvalJob> &jobs) const;

    /**
     * Streaming runBatch: additionally calls on_result(index, result)
     * as each job lands (in completion order). The returned vector is
     * still in input order. Unlike the blocking runBatch(), a
     * streaming call needs exclusive use of this Evaluator's service:
     * its drain claims every outstanding ticket, so it must not
     * overlap any other runBatch()/run()/service() activity on the
     * same Evaluator (panics on a foreign ticket).
     */
    std::vector<EvalResult> runBatch(
        const std::vector<EvalJob> &jobs,
        const std::function<void(std::size_t, const EvalResult &)>
            &on_result) const;

    /**
     * Cancellable streaming runBatch: the callback's Stream
     * controller can drop still-pending jobs mid-batch (queued
     * evaluations never run). Cancelled slots come back as
     * unsupported placeholders with note "cancelled". Same
     * exclusive-use caveat as the streaming overload.
     */
    std::vector<EvalResult> runBatch(
        const std::vector<EvalJob> &jobs,
        const std::function<void(std::size_t, const EvalResult &,
                                 BatchRunner::Stream &)> &on_result,
        int priority = 0) const;

    /**
     * Submit one job to the persistent service without blocking;
     * higher priority jobs are evaluated first. Claim the result
     * later with service().wait(ticket) (or tryNext/drain).
     */
    EvalService::Ticket submit(const EvalJob &job,
                               int priority = 0) const;

    /**
     * Cancel a submitted-but-unclaimed ticket on the persistent
     * service (see EvalService::cancel for the exact semantics).
     */
    bool cancel(EvalService::Ticket ticket) const;

    /**
     * The evaluator's async evaluation service: submit(EvalJob) now
     * (optionally with priority/deadline), wait()/tryNext()/drain()
     * later, cancel()/cancelAll() to shed abandoned work. Lazily
     * started with the global thread pool's worker count at first
     * use.
     */
    EvalService &service() const;

    /**
     * Build the per-layer workloads for a DNN under a scenario: the
     * design's pruning approach is applied to prunable layers (choosing
     * the design's nearest supported pattern) and activations carry the
     * model's typical density.
     */
    std::vector<GemmWorkload> buildDnnWorkloads(
        const DnnModel &model, const DnnScenario &scenario) const;

    /**
     * Evaluate a DNN end to end under a scenario. Layers are
     * evaluated concurrently on the global thread pool, repeated
     * layer shapes are deduped through the cache, and the totals are
     * accumulated serially in layer order, so the result is
     * bit-identical to the serial path at any thread count.
     */
    DnnEvalResult runDnn(const DnnModel &model, DnnName accuracy_model,
                         const DnnScenario &scenario) const;

    /** Hit/miss/eviction counters of the memoization cache. */
    EvalCacheStats cacheStats() const { return cache_.stats(); }

    /**
     * Save the cache to its configured persistence file (locked
     * merge-on-flush; see EvalCache::saveFile). The status separates
     * "no file configured" from a real I/O failure so drivers can
     * report a dropped warm cache instead of silently losing it.
     */
    EvalCache::FlushStatus flushCache() const { return cache_.flush(); }

    /** Drop all cached evaluations and reset the counters. */
    void clearCache() const { cache_.clear(); }

  private:
    /** The lazily-started batch runner backing runBatch()/service(). */
    BatchRunner &runner() const;

    std::vector<std::unique_ptr<Accelerator>> owned_;
    mutable EvalCache cache_;
    mutable Mutex runner_mu_; ///< Guards runner_ creation.
    mutable std::unique_ptr<BatchRunner> runner_ GUARDED_BY(runner_mu_);
};

} // namespace highlight

#endif // HIGHLIGHT_CORE_EVALUATOR_HH
