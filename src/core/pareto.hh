/**
 * @file
 * Pareto-frontier utilities for the EDP-vs-accuracy-loss analysis
 * (paper Sec 7.3, Fig 15).
 */

#ifndef HIGHLIGHT_CORE_PARETO_HH
#define HIGHLIGHT_CORE_PARETO_HH

#include <string>
#include <vector>

namespace highlight
{

/** One candidate point: lower x and lower y are both better. */
struct ParetoPoint
{
    double x = 0.0; ///< e.g. accuracy loss.
    double y = 0.0; ///< e.g. normalized EDP.
    std::string label;
};

/**
 * Indices of the points on the Pareto frontier (no other point is
 * <= in both coordinates with < in at least one). Stable order by x.
 */
std::vector<std::size_t> paretoFrontier(
    const std::vector<ParetoPoint> &points);

/** True if points[i] is on the frontier. */
bool onFrontier(const std::vector<ParetoPoint> &points, std::size_t i);

} // namespace highlight

#endif // HIGHLIGHT_CORE_PARETO_HH
