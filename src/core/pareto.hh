/**
 * @file
 * Pareto-frontier utilities for the EDP-vs-accuracy-loss analysis
 * (paper Sec 7.3, Fig 15).
 */

#ifndef HIGHLIGHT_CORE_PARETO_HH
#define HIGHLIGHT_CORE_PARETO_HH

#include <string>
#include <vector>

namespace highlight
{

/** One candidate point: lower x and lower y are both better. */
struct ParetoPoint
{
    double x = 0.0; ///< e.g. accuracy loss.
    double y = 0.0; ///< e.g. normalized EDP.
    std::string label;
};

/**
 * Batched frontier membership: mask[i] is true iff points[i] is on
 * the Pareto frontier (no other point is <= in both coordinates with
 * < in at least one). Large point sets run the dominance checks on
 * the global thread pool; the mask is identical at any thread count.
 */
std::vector<bool> frontierMask(const std::vector<ParetoPoint> &points);

/**
 * Indices of the points on the Pareto frontier (no other point is
 * <= in both coordinates with < in at least one). Stable order by x.
 */
std::vector<std::size_t> paretoFrontier(
    const std::vector<ParetoPoint> &points);

/**
 * True if points[i] is on the frontier. Prefer frontierMask() when
 * querying many points — this recomputes the sweep per call.
 */
bool onFrontier(const std::vector<ParetoPoint> &points, std::size_t i);

} // namespace highlight

#endif // HIGHLIGHT_CORE_PARETO_HH
