#include "core/explorer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace highlight
{

std::vector<double>
HssDesignReport::latencies() const
{
    // With skipping SAFs and perfect structured balance, relative
    // processing latency at a supported degree equals its density
    // (Fig 6(a)).
    std::vector<double> out;
    for (const auto &d : degrees)
        out.push_back(d.density);
    return out;
}

DesignSpaceExplorer::DesignSpaceExplorer(ComponentLibrary lib)
    : lib_(lib)
{
}

HssDesignReport
DesignSpaceExplorer::analyze(const HssDesignConfig &config) const
{
    if (config.supports.empty())
        fatal("DesignSpaceExplorer::analyze: no rank supports");

    HssDesignReport report;
    report.name = config.name;
    report.num_ranks = config.supports.size();
    std::vector<int> g_per_rank;
    for (const auto &s : config.supports) {
        report.hmax_per_rank.push_back(s.h_max);
        g_per_rank.push_back(s.g);
    }
    report.degrees = enumerateDegrees(config.supports);

    const MuxModel mux = buildHssMuxModel(
        g_per_rank, report.hmax_per_rank, config.num_pes,
        config.num_arrays);
    report.total_mux2 = mux.totalMux2();
    report.mux_area_um2 = mux.areaUm2(lib_);
    report.mux_energy_per_step_pj = mux.energyPerStepPj(lib_);
    return report;
}

HssDesignConfig
DesignSpaceExplorer::designS()
{
    return {"S (one-rank)", fig6DesignS(), 2, 1};
}

HssDesignConfig
DesignSpaceExplorer::designSS()
{
    return {"SS (two-rank)", fig6DesignSS(), 2, 1};
}

std::vector<HssDesignReport>
DesignSpaceExplorer::rankAblation(int min_degrees,
                                  double min_density) const
{
    std::vector<HssDesignReport> reports;

    // For each rank count, grow the per-rank H ranges breadth-first
    // (largest Hmax first gets incremented last) until the degree and
    // density targets are met.
    for (int ranks = 1; ranks <= 3; ++ranks) {
        std::vector<RankSupport> supports(
            static_cast<std::size_t>(ranks), RankSupport{2, 2, 2});
        bool satisfied = false;
        // Bound the search so a misconfiguration cannot loop forever.
        for (int iter = 0; iter < 64 && !satisfied; ++iter) {
            const auto degrees = enumerateDegrees(supports);
            const double sparsest = degrees.back().density;
            if (static_cast<int>(degrees.size()) >= min_degrees &&
                sparsest <= min_density + 1e-12) {
                satisfied = true;
                break;
            }
            // Grow the rank with the currently smallest Hmax (keeps
            // the per-rank Hmax balanced, which is the whole point of
            // multi-rank HSS).
            auto smallest = std::min_element(
                supports.begin(), supports.end(),
                [](const RankSupport &a, const RankSupport &b) {
                    return a.h_max < b.h_max;
                });
            ++smallest->h_max;
        }
        if (!satisfied) {
            warn(msgOf("rankAblation: ", ranks,
                       "-rank search did not converge"));
            continue;
        }
        HssDesignConfig config;
        config.name = std::to_string(ranks) + "-rank";
        config.supports = supports;
        config.num_pes = 2;
        config.num_arrays = 1;
        reports.push_back(analyze(config));
    }
    return reports;
}

} // namespace highlight
