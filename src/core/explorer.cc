#include "core/explorer.hh"

#include <algorithm>
#include <mutex>
#include <optional>

#include "common/logging.hh"
#include "runtime/thread_pool.hh"

namespace highlight
{

std::vector<double>
HssDesignReport::latencies() const
{
    // With skipping SAFs and perfect structured balance, relative
    // processing latency at a supported degree equals its density
    // (Fig 6(a)).
    std::vector<double> out;
    for (const auto &d : degrees)
        out.push_back(d.density);
    return out;
}

DesignSpaceExplorer::DesignSpaceExplorer(ComponentLibrary lib)
    : lib_(lib)
{
}

HssDesignReport
DesignSpaceExplorer::analyze(const HssDesignConfig &config) const
{
    if (config.supports.empty())
        fatal("DesignSpaceExplorer::analyze: no rank supports");

    HssDesignReport report;
    report.name = config.name;
    report.num_ranks = config.supports.size();
    std::vector<int> g_per_rank;
    for (const auto &s : config.supports) {
        report.hmax_per_rank.push_back(s.h_max);
        g_per_rank.push_back(s.g);
    }
    report.degrees = enumerateDegrees(config.supports);

    const MuxModel mux = buildHssMuxModel(
        g_per_rank, report.hmax_per_rank, config.num_pes,
        config.num_arrays);
    report.total_mux2 = mux.totalMux2();
    report.mux_area_um2 = mux.areaUm2(lib_);
    report.mux_energy_per_step_pj = mux.energyPerStepPj(lib_);
    return report;
}

HssDesignConfig
DesignSpaceExplorer::designS()
{
    return {"S (one-rank)", fig6DesignS(), 2, 1};
}

HssDesignConfig
DesignSpaceExplorer::designSS()
{
    return {"SS (two-rank)", fig6DesignSS(), 2, 1};
}

std::vector<HssDesignReport>
DesignSpaceExplorer::analyzeMany(
    const std::vector<HssDesignConfig> &configs) const
{
    // Grain 1: per-config cost varies with rank count, so fine
    // claiming balances better than chunks here.
    return ThreadPool::global().parallelMap(
        configs.size(),
        [&](std::size_t i) { return analyze(configs[i]); }, 1);
}

std::vector<HssDesignReport>
DesignSpaceExplorer::analyzeMany(
    const std::vector<HssDesignConfig> &configs,
    const std::function<void(std::size_t, const HssDesignReport &)>
        &on_report) const
{
    std::vector<HssDesignReport> out(configs.size());
    std::mutex report_mu;
    ThreadPool::global().parallelFor(
        configs.size(),
        [&](std::size_t i) {
            out[i] = analyze(configs[i]);
            // Stream the landed report; serialized so callbacks never
            // overlap even though their order is scheduling-dependent.
            std::lock_guard<std::mutex> lock(report_mu);
            on_report(i, out[i]);
        },
        1);
    return out;
}

namespace
{

/**
 * Grow one rank count's per-rank H ranges breadth-first (the rank
 * with the smallest Hmax grows first, keeping the ranks balanced —
 * the whole point of multi-rank HSS) until the degree and density
 * targets are met. Empty when the bounded search does not converge.
 */
std::optional<HssDesignConfig>
searchRankConfig(int ranks, int min_degrees, double min_density)
{
    std::vector<RankSupport> supports(
        static_cast<std::size_t>(ranks), RankSupport{2, 2, 2});
    bool satisfied = false;
    // Bound the search so a misconfiguration cannot loop forever.
    for (int iter = 0; iter < 64 && !satisfied; ++iter) {
        const auto degrees = enumerateDegrees(supports);
        const double sparsest = degrees.back().density;
        if (static_cast<int>(degrees.size()) >= min_degrees &&
            sparsest <= min_density + 1e-12) {
            satisfied = true;
            break;
        }
        auto smallest = std::min_element(
            supports.begin(), supports.end(),
            [](const RankSupport &a, const RankSupport &b) {
                return a.h_max < b.h_max;
            });
        ++smallest->h_max;
    }
    if (!satisfied)
        return std::nullopt;
    HssDesignConfig config;
    config.name = std::to_string(ranks) + "-rank";
    config.supports = supports;
    config.num_pes = 2;
    config.num_arrays = 1;
    return config;
}

} // namespace

std::vector<HssDesignReport>
DesignSpaceExplorer::rankAblation(int min_degrees,
                                  double min_density) const
{
    // Each rank count's search is independent: run them concurrently
    // and collect in rank order. Warnings for non-converged searches
    // are emitted serially afterwards so the output order is stable.
    const auto found = ThreadPool::global().parallelMap(
        std::size_t{3}, [&](std::size_t i) {
            return searchRankConfig(static_cast<int>(i) + 1,
                                    min_degrees, min_density);
        });

    std::vector<HssDesignConfig> configs;
    for (std::size_t i = 0; i < found.size(); ++i) {
        if (found[i])
            configs.push_back(*found[i]);
        else
            warn(msgOf("rankAblation: ", i + 1,
                       "-rank search did not converge"));
    }
    return analyzeMany(configs);
}

} // namespace highlight
