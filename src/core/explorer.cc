#include "core/explorer.hh"

#include <algorithm>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.hh"
#include "common/mutex.hh"
#include "runtime/thread_pool.hh"

namespace highlight
{

double
ParetoCandidateOutcome::edp() const
{
    // Exactly DnnEvalResult::edp()'s floating-point sequence, so a
    // completed candidate's EDP is bit-identical to the exhaustive
    // runDnn path's.
    const double seconds = total_cycles / 1e9; // 1 GHz clock
    return total_energy_pj * 1e-12 * seconds;
}

std::vector<double>
HssDesignReport::latencies() const
{
    // With skipping SAFs and perfect structured balance, relative
    // processing latency at a supported degree equals its density
    // (Fig 6(a)).
    std::vector<double> out;
    for (const auto &d : degrees)
        out.push_back(d.density);
    return out;
}

DesignSpaceExplorer::DesignSpaceExplorer(ComponentLibrary lib)
    : lib_(lib)
{
}

HssDesignReport
DesignSpaceExplorer::analyze(const HssDesignConfig &config) const
{
    if (config.supports.empty())
        fatal("DesignSpaceExplorer::analyze: no rank supports");

    HssDesignReport report;
    report.name = config.name;
    report.num_ranks = config.supports.size();
    std::vector<int> g_per_rank;
    for (const auto &s : config.supports) {
        report.hmax_per_rank.push_back(s.h_max);
        g_per_rank.push_back(s.g);
    }
    report.degrees = enumerateDegrees(config.supports);

    const MuxModel mux = buildHssMuxModel(
        g_per_rank, report.hmax_per_rank, config.num_pes,
        config.num_arrays);
    report.total_mux2 = mux.totalMux2();
    report.mux_area_um2 = mux.areaUm2(lib_);
    report.mux_energy_per_step_pj = mux.energyPerStepPj(lib_);
    return report;
}

std::pair<std::size_t, std::size_t>
DesignSpaceExplorer::shardRange(std::size_t total, int index, int count)
{
    if (count < 1)
        fatal(msgOf("shardRange: count ", count, " must be >= 1"));
    if (index < 0 || index >= count)
        fatal(msgOf("shardRange: index ", index, " not in [0, ", count,
                    ")"));
    // floor(total * i / count) boundaries: contiguous, disjoint,
    // covering, near-even — and a pure function of the arguments, so
    // N uncoordinated shard processes agree on the partition.
    const auto lo = static_cast<std::size_t>(
        total * static_cast<unsigned long long>(index) / count);
    const auto hi = static_cast<std::size_t>(
        total * (static_cast<unsigned long long>(index) + 1) / count);
    return {lo, hi};
}

HssDesignConfig
DesignSpaceExplorer::designS()
{
    return {"S (one-rank)", fig6DesignS(), 2, 1};
}

HssDesignConfig
DesignSpaceExplorer::designSS()
{
    return {"SS (two-rank)", fig6DesignSS(), 2, 1};
}

std::vector<HssDesignReport>
DesignSpaceExplorer::analyzeMany(
    const std::vector<HssDesignConfig> &configs) const
{
    // Grain 1: per-config cost varies with rank count, so fine
    // claiming balances better than chunks here.
    return ThreadPool::global().parallelMap(
        configs.size(),
        [&](std::size_t i) { return analyze(configs[i]); }, 1);
}

std::vector<HssDesignReport>
DesignSpaceExplorer::analyzeMany(
    const std::vector<HssDesignConfig> &configs,
    const std::function<void(std::size_t, const HssDesignReport &)>
        &on_report) const
{
    std::vector<HssDesignReport> out(configs.size());
    Mutex report_mu;
    ThreadPool::global().parallelFor(
        configs.size(),
        [&](std::size_t i) {
            out[i] = analyze(configs[i]);
            // Stream the landed report; serialized so callbacks never
            // overlap even though their order is scheduling-dependent.
            MutexLock lock(report_mu);
            on_report(i, out[i]);
        },
        1);
    return out;
}

namespace
{

/**
 * Grow one rank count's per-rank H ranges breadth-first (the rank
 * with the smallest Hmax grows first, keeping the ranks balanced —
 * the whole point of multi-rank HSS) until the degree and density
 * targets are met. Empty when the bounded search does not converge.
 */
std::optional<HssDesignConfig>
searchRankConfig(int ranks, int min_degrees, double min_density)
{
    std::vector<RankSupport> supports(
        static_cast<std::size_t>(ranks), RankSupport{2, 2, 2});
    bool satisfied = false;
    // Bound the search so a misconfiguration cannot loop forever.
    for (int iter = 0; iter < 64 && !satisfied; ++iter) {
        const auto degrees = enumerateDegrees(supports);
        const double sparsest = degrees.back().density;
        if (static_cast<int>(degrees.size()) >= min_degrees &&
            sparsest <= min_density + 1e-12) {
            satisfied = true;
            break;
        }
        auto smallest = std::min_element(
            supports.begin(), supports.end(),
            [](const RankSupport &a, const RankSupport &b) {
                return a.h_max < b.h_max;
            });
        ++smallest->h_max;
    }
    if (!satisfied)
        return std::nullopt;
    HssDesignConfig config;
    config.name = std::to_string(ranks) + "-rank";
    config.supports = supports;
    config.num_pes = 2;
    config.num_arrays = 1;
    return config;
}

} // namespace

ParetoSweepResult
DesignSpaceExplorer::paretoSweep(
    const Evaluator &ev, const std::vector<ParetoCandidate> &candidates,
    bool prune) const
{
    EvalService &service = ev.service();
    const std::uint64_t saved_before = service.evaluationsSaved();
    const std::uint64_t cancelled_before = service.cancelledCount();

    const std::size_t n = candidates.size();
    ParetoSweepResult out;
    out.outcomes.resize(n);
    for (std::size_t ci = 0; ci < n; ++ci) {
        out.outcomes[ci].label = candidates[ci].label;
        out.outcomes[ci].x = candidates[ci].x;
    }

    /** Streaming state of one candidate. */
    struct State
    {
        std::vector<EvalResult> results; ///< Slot per job.
        std::vector<char> landed;
        /** Tickets not yet streamed to us (cancellation targets). */
        std::unordered_set<EvalService::Ticket> outstanding;
        std::size_t submitted = 0; ///< Jobs submitted so far.
        std::size_t next = 0; ///< Layer-order prefix pointer.
        bool done = false;    ///< Completed, unsupported or pruned.
    };
    std::vector<State> state(n);
    std::unordered_map<EvalService::Ticket,
                       std::pair<std::size_t, std::size_t>>
        where;

    // Submit lowest-x candidates first at descending priority:
    // likely frontier points complete earliest, which is what lets
    // pruning retire the backlog behind them.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return candidates[a].x < candidates[b].x;
                     });
    std::vector<int> priority(n, 0);
    for (std::size_t rank = 0; rank < n; ++rank)
        priority[order[rank]] = static_cast<int>(n - rank);

    std::vector<std::size_t> dominators; // completed candidates

    // Each candidate keeps at most `window` jobs in flight, topping
    // up one-for-one as its results stream back. The window is the
    // early-exit lever: a pruned candidate's unsubmitted tail is
    // never even handed to the service, so pruning reclaims work even
    // when the workers would otherwise keep pace with submission.
    const std::size_t window = std::max<std::size_t>(
        16, 4 * static_cast<std::size_t>(service.numWorkers()));

    const auto submitNext = [&](std::size_t ci) {
        auto &st = state[ci];
        const auto &jobs = candidates[ci].jobs;
        const std::size_t j = st.submitted++;
        const auto t = service.submit(jobs[j], priority[ci]);
        st.outstanding.insert(t);
        where.emplace(t, std::make_pair(ci, j));
        ++out.stats.jobs_submitted;
    };

    for (const std::size_t ci : order) {
        auto &st = state[ci];
        const auto &jobs = candidates[ci].jobs;
        st.results.resize(jobs.size());
        st.landed.assign(jobs.size(), 0);
        for (std::size_t j = 0;
             j < std::min(window, jobs.size()); ++j)
            submitNext(ci);
        if (jobs.empty()) {
            // Vacuously complete (and, at y = 0, the strongest
            // possible dominator — same treatment as the normal
            // completion path gives finished candidates).
            st.done = true;
            out.outcomes[ci].completed = true;
            dominators.push_back(ci);
        }
    }

    const auto retireCandidate = [&](std::size_t ci) {
        auto &st = state[ci];
        st.done = true;
        out.stats.jobs_skipped +=
            candidates[ci].jobs.size() - st.submitted;
        // lint-allow(no-unordered-iter): cancel() retires each ticket
        // independently; counters and results are order-invariant.
        for (const auto t : st.outstanding)
            service.cancel(t);
        st.outstanding.clear();
    };

    const auto pruneCandidate = [&](std::size_t ci, std::size_t by) {
        out.outcomes[ci].pruned = true;
        out.outcomes[ci].note =
            msgOf("pruned: dominated by ", candidates[by].label);
        retireCandidate(ci);
    };

    // d strictly dominates c's *lower bound*: d finished at no-worse
    // x with strictly lower EDP than c's layer-order prefix — and the
    // prefix only ever grows (nonnegative additions are monotone in
    // IEEE round-to-nearest), so c's final EDP must exceed d's too.
    // Dominated points can never be on the frontier, and removing
    // them never changes any other point's frontier membership
    // (dominance is transitive), so pruning preserves the frontier.
    const auto dominatorOf = [&](std::size_t ci) -> std::ptrdiff_t {
        if (candidates[ci].never_prune)
            return -1;
        const double bound = out.outcomes[ci].edp();
        for (const std::size_t d : dominators) {
            if (out.outcomes[d].x <= out.outcomes[ci].x &&
                out.outcomes[d].edp() < bound)
                return static_cast<std::ptrdiff_t>(d);
        }
        return -1;
    };

    const auto consume = [&](EvalService::Ticket t,
                             const EvalResult &r) {
        const auto wit = where.find(t);
        if (wit == where.end())
            panic(msgOf("paretoSweep: drained foreign ticket ", t,
                        " — the sweep needs exclusive use of the "
                        "evaluator's service"));
        const std::size_t ci = wit->second.first;
        const std::size_t j = wit->second.second;
        auto &st = state[ci];
        st.outstanding.erase(t);
        // Top up the candidate's window (one landed -> one
        // submitted). An unsupported candidate keeps submitting in
        // exhaustive mode — the exhaustive run evaluates every layer
        // — but is cut short when pruning is on.
        if (st.submitted < candidates[ci].jobs.size() &&
            !(prune && st.done))
            submitNext(ci);
        if (st.done)
            return; // retired candidate's stragglers: ignore
        st.results[j] = r;
        st.landed[j] = 1;
        bool advanced = false;
        while (st.next < st.landed.size() && st.landed[st.next]) {
            EvalResult &lr = st.results[st.next];
            if (!lr.supported) {
                // First failing layer in layer order wins, totals
                // zeroed — Evaluator::runDnn's exact semantics.
                auto &oc = out.outcomes[ci];
                oc.supported = false;
                oc.note = msgOf("layer ", lr.workload, ": ", lr.note);
                oc.total_energy_pj = 0.0;
                oc.total_cycles = 0.0;
                if (prune) {
                    retireCandidate(ci);
                } else {
                    st.done = true;
                }
                return;
            }
            out.outcomes[ci].total_energy_pj += lr.totalEnergyPj();
            out.outcomes[ci].total_cycles += lr.cycles;
            ++st.next;
            advanced = true;
        }
        if (st.next == st.landed.size()) {
            st.done = true;
            out.outcomes[ci].completed = true;
            dominators.push_back(ci);
            if (!prune)
                return;
            // The new point may retire other candidates' bounds.
            for (std::size_t ck = 0; ck < n; ++ck) {
                if (state[ck].done || candidates[ck].never_prune)
                    continue;
                if (out.outcomes[ci].x <= out.outcomes[ck].x &&
                    out.outcomes[ci].edp() < out.outcomes[ck].edp())
                    pruneCandidate(ck, ci);
            }
        } else if (prune && advanced) {
            const std::ptrdiff_t d = dominatorOf(ci);
            if (d >= 0)
                pruneCandidate(ci, static_cast<std::size_t>(d));
        }
    };

    try {
        service.drain(consume);
    } catch (...) {
        // A throwing evaluation stops the drain; claim every other
        // candidate's outstanding tickets (cancel discards queued,
        // running, landed and errored alike) before propagating, so
        // a single bad layer cannot leak foreign tickets into the
        // evaluator's shared persistent service.
        for (auto &st : state) {
            // lint-allow(no-unordered-iter): order-invariant — every
            // ticket is cancelled regardless of visit order.
            for (const auto t : st.outstanding)
                service.cancel(t);
            st.outstanding.clear();
        }
        throw;
    }

    out.stats.tickets_cancelled =
        service.cancelledCount() - cancelled_before;
    out.stats.evaluations_saved =
        service.evaluationsSaved() - saved_before;
    return out;
}

std::vector<HssDesignReport>
DesignSpaceExplorer::rankAblation(int min_degrees,
                                  double min_density) const
{
    // Each rank count's search is independent: run them concurrently
    // and collect in rank order. Warnings for non-converged searches
    // are emitted serially afterwards so the output order is stable.
    const auto found = ThreadPool::global().parallelMap(
        std::size_t{3}, [&](std::size_t i) {
            return searchRankConfig(static_cast<int>(i) + 1,
                                    min_degrees, min_density);
        });

    std::vector<HssDesignConfig> configs;
    for (std::size_t i = 0; i < found.size(); ++i) {
        if (found[i])
            configs.push_back(*found[i]);
        else
            warn(msgOf("rankAblation: ", i + 1,
                       "-rank search did not converge"));
    }
    return analyzeMany(configs);
}

} // namespace highlight
