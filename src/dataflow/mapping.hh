/**
 * @file
 * GEMM tiling onto an architecture (the "mapping" of Timeloop [40]).
 *
 * The canonical mapping splits the GLB data partition among an A tile,
 * a B tile and an output tile. Tile extents adapt to operand
 * compression: a sparser stored A lets more rows fit, cutting the
 * number of B re-fetch passes from DRAM — a first-order energy effect
 * of compression the paper relies on.
 */

#ifndef HIGHLIGHT_DATAFLOW_MAPPING_HH
#define HIGHLIGHT_DATAFLOW_MAPPING_HH

#include <cstdint>

#include "arch/arch_spec.hh"

namespace highlight
{

/** Fractions of the GLB data partition assigned to each tenant. */
struct GlbPartition
{
    double a_share = 0.4;
    double b_share = 0.4;
    double out_share = 0.2;
};

/**
 * The resolved tiling of one GEMM on one architecture.
 */
struct GemmTiling
{
    std::int64_t m = 0, k = 0, n = 0;

    std::int64_t m_tile = 0; ///< A rows resident per GLB tile.
    std::int64_t n_tile = 0; ///< B columns resident per GLB tile.

    std::int64_t m_passes = 0; ///< ceil(M / m_tile): B DRAM re-fetches.
    std::int64_t n_passes = 0; ///< ceil(N / n_tile): A GLB re-reads.

    /** True when a whole operand fits in its GLB share (single pass). */
    bool a_resident = false;
    bool b_resident = false;
};

/**
 * Compute the canonical tiling.
 *
 * @param arch             The architecture (GLB capacity, MAC grid).
 * @param m,k,n            GEMM dimensions.
 * @param a_stored_density Stored fraction of A (compression in effect).
 * @param b_stored_density Stored fraction of B.
 * @param part             GLB share split.
 */
GemmTiling computeTiling(const ArchSpec &arch, std::int64_t m,
                         std::int64_t k, std::int64_t n,
                         double a_stored_density, double b_stored_density,
                         const GlbPartition &part = {});

} // namespace highlight

#endif // HIGHLIGHT_DATAFLOW_MAPPING_HH
