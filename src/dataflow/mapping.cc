#include "dataflow/mapping.hh"

#include <algorithm>

#include "common/logging.hh"

namespace highlight
{

GemmTiling
computeTiling(const ArchSpec &arch, std::int64_t m, std::int64_t k,
              std::int64_t n, double a_stored_density,
              double b_stored_density, const GlbPartition &part)
{
    if (m < 1 || k < 1 || n < 1)
        fatal(msgOf("computeTiling: bad GEMM ", m, "x", k, "x", n));
    if (a_stored_density <= 0.0 || a_stored_density > 1.0 ||
        b_stored_density <= 0.0 || b_stored_density > 1.0)
        fatal("computeTiling: stored densities must be in (0, 1]");

    GemmTiling t;
    t.m = m;
    t.k = k;
    t.n = n;

    const double glb_words = static_cast<double>(arch.glbDataWords());
    const double a_words_per_row =
        static_cast<double>(k) * a_stored_density;
    const double b_words_per_col =
        static_cast<double>(k) * b_stored_density;

    // A tile: as many full-K rows as the A share holds (at least the
    // spatial M so the MAC grid can be fed).
    t.m_tile = static_cast<std::int64_t>(glb_words * part.a_share /
                                         a_words_per_row);
    t.m_tile = std::clamp<std::int64_t>(t.m_tile, 1, m);
    // B tile: as many full-K columns as the B share holds.
    t.n_tile = static_cast<std::int64_t>(glb_words * part.b_share /
                                         b_words_per_col);
    t.n_tile = std::clamp<std::int64_t>(t.n_tile, 1, n);

    t.m_passes = (m + t.m_tile - 1) / t.m_tile;
    t.n_passes = (n + t.n_tile - 1) / t.n_tile;
    t.a_resident = t.m_passes == 1;
    t.b_resident = t.n_passes == 1;
    return t;
}

} // namespace highlight
