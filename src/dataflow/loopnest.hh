/**
 * @file
 * Loopnest representation of dataflows (paper Fig 8(b), following
 * Timeloop [40] / Eyeriss [5]).
 *
 * A dataflow is an ordered nest of loops over workload dimensions,
 * each either temporal or spatial, annotated with the storage level it
 * lives at. The representation is descriptive: the analytical engine
 * derives its reuse factors from a GemmTiling, and the printer
 * reproduces the paper's loopnest listing.
 */

#ifndef HIGHLIGHT_DATAFLOW_LOOPNEST_HH
#define HIGHLIGHT_DATAFLOW_LOOPNEST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace highlight
{

/** One loop of a loopnest. */
struct Loop
{
    std::string dim;       ///< Dimension name, e.g. "M1" or "K0".
    std::int64_t bound = 1;
    bool spatial = false;  ///< parallel-for vs. for.
    std::string level;     ///< Storage level, e.g. "DRAM", "GLB", "PE".
};

/**
 * An ordered loopnest (outermost loop first).
 */
class LoopNest
{
  public:
    LoopNest() = default;
    explicit LoopNest(std::vector<Loop> loops);

    const std::vector<Loop> &loops() const { return loops_; }

    /** Product of all loop bounds (total iteration count). */
    std::int64_t totalIterations() const;

    /** Product of spatial loop bounds (hardware parallelism used). */
    std::int64_t spatialIterations() const;

    /** Indented pseudo-code listing like the paper's Fig 8(b). */
    std::string str() const;

  private:
    std::vector<Loop> loops_;
};

/**
 * HighLight's HSS-operand stationary dataflow (Sec 6.3.1, Fig 8(b))
 * instantiated for an M x K x N GEMM on the given MAC organization.
 *
 * @param m,k,n       GEMM dimensions.
 * @param m_tile      A-tile rows resident in the GLB.
 * @param n_tile      B-tile columns resident in the GLB.
 * @param spatial_m   Output-row parallelism.
 * @param spatial_k   K-lane parallelism (spatially reduced).
 */
LoopNest highlightDataflow(std::int64_t m, std::int64_t k, std::int64_t n,
                           std::int64_t m_tile, std::int64_t n_tile,
                           int spatial_m, int spatial_k);

} // namespace highlight

#endif // HIGHLIGHT_DATAFLOW_LOOPNEST_HH
