#include "dataflow/loopnest.hh"

#include <sstream>

#include "common/logging.hh"

namespace highlight
{

LoopNest::LoopNest(std::vector<Loop> loops) : loops_(std::move(loops))
{
    for (const auto &l : loops_) {
        if (l.bound < 1)
            fatal(msgOf("LoopNest: loop ", l.dim, " has bound ", l.bound));
    }
}

std::int64_t
LoopNest::totalIterations() const
{
    std::int64_t total = 1;
    for (const auto &l : loops_)
        total *= l.bound;
    return total;
}

std::int64_t
LoopNest::spatialIterations() const
{
    std::int64_t total = 1;
    for (const auto &l : loops_) {
        if (l.spatial)
            total *= l.bound;
    }
    return total;
}

std::string
LoopNest::str() const
{
    std::ostringstream oss;
    int indent = 0;
    for (const auto &l : loops_) {
        oss << std::string(static_cast<std::size_t>(indent) * 2, ' ')
            << (l.spatial ? "parallel-for " : "for ") << l.dim << " in [0, "
            << l.bound << ")";
        if (!l.level.empty())
            oss << "   # " << l.level;
        oss << "\n";
        ++indent;
    }
    oss << std::string(static_cast<std::size_t>(indent) * 2, ' ')
        << "Z[m][n] += A[m][k] * B[k][n]\n";
    return oss.str();
}

LoopNest
highlightDataflow(std::int64_t m, std::int64_t k, std::int64_t n,
                  std::int64_t m_tile, std::int64_t n_tile, int spatial_m,
                  int spatial_k)
{
    auto ceil_div = [](std::int64_t a, std::int64_t b) {
        return (a + b - 1) / b;
    };
    std::vector<Loop> loops;
    loops.push_back({"M1", ceil_div(m, m_tile), false, "DRAM"});
    loops.push_back({"N1", ceil_div(n, n_tile), false, "DRAM"});
    loops.push_back(
        {"K1", ceil_div(k, spatial_k), false, "GLB (A chunk stationary)"});
    loops.push_back({"M0t", ceil_div(m_tile, spatial_m), false, "GLB"});
    loops.push_back({"N0", n_tile, false, "GLB (stream B)"});
    loops.push_back({"M0", std::min<std::int64_t>(m_tile, spatial_m), true,
                     "PE rows"});
    loops.push_back({"K0", std::min<std::int64_t>(k, spatial_k), true,
                     "PE k-lanes (spatial reduce)"});
    return LoopNest(std::move(loops));
}

} // namespace highlight
