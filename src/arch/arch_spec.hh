/**
 * @file
 * Architecture topology and resource allocation (paper Sec 5.4,
 * Table 4).
 *
 * Every evaluated design is a memory hierarchy (DRAM -> GLB -> RF/regs)
 * feeding a MAC array organized as arrays x PEs x MACs-per-PE. Sparse
 * designs partition the GLB into data and metadata storage. The
 * builders below reproduce Table 4's allocations exactly.
 */

#ifndef HIGHLIGHT_ARCH_ARCH_SPEC_HH
#define HIGHLIGHT_ARCH_ARCH_SPEC_HH

#include <cstdint>
#include <string>

namespace highlight
{

/**
 * Resource allocation of one accelerator design.
 */
struct ArchSpec
{
    std::string name;

    // --- storage (capacities in KB) ---
    double glb_data_kb = 0.0; ///< GLB data partition.
    double glb_meta_kb = 0.0; ///< GLB metadata partition (0 if dense).
    double rf_kb = 0.0;       ///< Per-instance register file.
    int rf_instances = 0;

    // --- compute ---
    int num_arrays = 1;   ///< PE arrays.
    int pes_per_array = 1;
    int macs_per_pe = 1;

    // --- spatial organization of the MAC grid ---
    /**
     * MAC lanes reducing along K spatially (partial sums from these
     * lanes are accumulated before touching the RF); the remaining
     * parallelism fans out over output rows (M).
     */
    int spatial_k = 32;

    /** Total MAC count. */
    int numMacs() const
    {
        return num_arrays * pes_per_array * macs_per_pe;
    }

    /** Output-row parallelism: numMacs() / spatial_k. */
    int spatialM() const { return numMacs() / spatial_k; }

    /** Total GLB capacity in 16-bit words (data partition). */
    std::int64_t glbDataWords() const
    {
        return static_cast<std::int64_t>(glb_data_kb * 1024.0 / 2.0);
    }

    /** Table 4 "GLB" cell, e.g. "320KB" or "256 + 64KB". */
    std::string glbString() const;

    /** Table 4 "RF" cell, e.g. "4 x 2KB". */
    std::string rfString() const;

    /** Table 4 "Compute" cell, e.g. "4 x 256". */
    std::string computeString() const;
};

/** TC-like dense accelerator: 320KB GLB, 4 x 2KB RF, 4 x 256 MACs. */
ArchSpec tcArch();

/** STC-like: 256 + 64KB GLB, 4 x 2KB RF, 4 x 256 MACs. */
ArchSpec stcArch();

/** DSTC-like: 256 + 64KB GLB, 4 x 2KB RF, 4 x 256 MACs. */
ArchSpec dstcArch();

/** S2TA-like: 256 + 64KB GLB, 64 x 64B RF, 64 x 16 MACs. */
ArchSpec s2taArch();

/**
 * HighLight: 256 + 64KB GLB, 4 x 2KB RF, 1024 MACs in 4 PE arrays;
 * each PE hosts G0 = 2 MACs (Sec 6.3.3), so 128 PEs per array.
 */
ArchSpec highlightArch();

/** DSSO: HighLight's resources with the dual-side HSS SAFs (Sec 7.5). */
ArchSpec dssoArch();

} // namespace highlight

#endif // HIGHLIGHT_ARCH_ARCH_SPEC_HH
