#include "arch/arch_spec.hh"

#include <sstream>

namespace highlight
{

namespace
{

std::string
kbString(double kb)
{
    std::ostringstream oss;
    if (kb >= 1.0) {
        oss << static_cast<long>(kb) << "KB";
    } else {
        oss << static_cast<long>(kb * 1024.0) << "B";
    }
    return oss.str();
}

} // namespace

std::string
ArchSpec::glbString() const
{
    std::ostringstream oss;
    if (glb_meta_kb > 0.0) {
        oss << static_cast<long>(glb_data_kb) << " + "
            << static_cast<long>(glb_meta_kb) << "KB";
    } else {
        oss << static_cast<long>(glb_data_kb) << "KB";
    }
    return oss.str();
}

std::string
ArchSpec::rfString() const
{
    std::ostringstream oss;
    oss << rf_instances << " x " << kbString(rf_kb);
    return oss.str();
}

std::string
ArchSpec::computeString() const
{
    std::ostringstream oss;
    oss << num_arrays << " x " << pes_per_array * macs_per_pe;
    return oss.str();
}

ArchSpec
tcArch()
{
    ArchSpec a;
    a.name = "TC";
    a.glb_data_kb = 320.0;
    a.glb_meta_kb = 0.0;
    a.rf_kb = 2.0;
    a.rf_instances = 4;
    a.num_arrays = 4;
    a.pes_per_array = 256;
    a.macs_per_pe = 1;
    a.spatial_k = 32;
    return a;
}

ArchSpec
stcArch()
{
    ArchSpec a = tcArch();
    a.name = "STC";
    a.glb_data_kb = 256.0;
    a.glb_meta_kb = 64.0;
    // STC PEs host the 2 lanes that process a 2:4 block.
    a.pes_per_array = 128;
    a.macs_per_pe = 2;
    return a;
}

ArchSpec
dstcArch()
{
    ArchSpec a = tcArch();
    a.name = "DSTC";
    a.glb_data_kb = 256.0;
    a.glb_meta_kb = 64.0;
    return a;
}

ArchSpec
s2taArch()
{
    ArchSpec a;
    a.name = "S2TA";
    a.glb_data_kb = 256.0;
    a.glb_meta_kb = 64.0;
    a.rf_kb = 64.0 / 1024.0; // 64B
    a.rf_instances = 64;
    a.num_arrays = 64;
    a.pes_per_array = 2;
    a.macs_per_pe = 8;
    a.spatial_k = 8;
    return a;
}

ArchSpec
highlightArch()
{
    ArchSpec a;
    a.name = "HighLight";
    a.glb_data_kb = 256.0;
    a.glb_meta_kb = 64.0;
    a.rf_kb = 2.0;
    a.rf_instances = 4;
    a.num_arrays = 4;
    a.pes_per_array = 128; // G0 = 2 MACs per PE -> 4 x 256 MACs total.
    a.macs_per_pe = 2;
    a.spatial_k = 32;
    return a;
}

ArchSpec
dssoArch()
{
    ArchSpec a = highlightArch();
    a.name = "DSSO";
    return a;
}

} // namespace highlight
