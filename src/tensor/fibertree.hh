/**
 * @file
 * Fibertree abstraction (paper Sec 3.1, following Sze et al. [44]).
 *
 * A fibertree expresses the *content* of a tensor independent of storage
 * layout. Each tensor dimension corresponds to a rank; each rank holds
 * fibers; a fiber is a set of (coordinate, payload) pairs. For
 * intermediate ranks the payload is a fiber one rank below; at Rank0 the
 * payload is a value. A coordinate is present only if its subtree
 * contains at least one nonzero, which is exactly how pruning a
 * coordinate at an intermediate rank implicitly prunes its whole subtree
 * (paper Sec 3.2).
 */

#ifndef HIGHLIGHT_TENSOR_FIBERTREE_HH
#define HIGHLIGHT_TENSOR_FIBERTREE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/dense_tensor.hh"
#include "tensor/shape.hh"

namespace highlight
{

/**
 * One fiber: the coordinates present in one slice of a rank, plus their
 * payloads. For intermediate ranks payload[i] is the index of a fiber in
 * the next-lower rank's fiber array; for the leaf rank payload[i] indexes
 * into the tree's value array.
 */
struct Fiber
{
    /** Coordinates present (strictly increasing). */
    std::vector<std::int64_t> coords;
    /** Payload handles, parallel to coords. */
    std::vector<std::size_t> payloads;

    /** Number of present coordinates (paper: the fiber's occupancy). */
    std::size_t occupancy() const { return coords.size(); }
};

/**
 * A fibertree view of a tensor.
 *
 * Ranks are numbered the paper's way: rank index 0 is the *lowest*
 * (leaf) rank. rankName(r) gives the dimension name of rank r.
 */
class Fibertree
{
  public:
    /**
     * Build the fibertree of a dense tensor. Exact zeros become absent
     * coordinates; intermediate coordinates whose entire subtree is zero
     * are absent too.
     */
    static Fibertree fromDense(const DenseTensor &tensor);

    /** Number of ranks (== tensor rank). */
    std::size_t numRanks() const { return rank_names_.size(); }

    /**
     * Dimension name of the given rank; rank 0 is the leaf rank (the
     * innermost tensor dimension).
     */
    const std::string &rankName(std::size_t rank) const;

    /** Extent (fiber shape) of the given rank. */
    std::int64_t rankShape(std::size_t rank) const;

    /** All fibers at the given rank. */
    const std::vector<Fiber> &fibersAt(std::size_t rank) const;

    /** The root fiber (top rank has exactly one fiber). */
    const Fiber &root() const;

    /** Leaf values (payloads of rank-0 coordinates index into this). */
    const std::vector<float> &values() const { return values_; }

    /** Total number of nonzero values in the tree. */
    std::size_t nnz() const { return values_.size(); }

    /** Reconstruct the dense tensor (inverse of fromDense). */
    DenseTensor toDense() const;

    /** The shape of the originating tensor. */
    const TensorShape &shape() const { return shape_; }

    /**
     * Occupancies of every fiber at a rank, *including* empty fibers
     * implied by present parent coordinates. Used by the conformance
     * checker to test per-fiber G:H rules.
     */
    std::vector<std::size_t> occupancies(std::size_t rank) const;

    /**
     * Render the tree as an indented listing (small tensors only);
     * handy for debugging and for the Table 2 examples.
     */
    std::string str() const;

  private:
    Fibertree() = default;

    TensorShape shape_;
    std::vector<std::string> rank_names_; // index 0 = leaf rank
    /** ranks_[r] = fibers at rank r (index 0 = leaf rank). */
    std::vector<std::vector<Fiber>> ranks_;
    std::vector<float> values_;
};

} // namespace highlight

#endif // HIGHLIGHT_TENSOR_FIBERTREE_HH
