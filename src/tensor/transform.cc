#include "tensor/transform.hh"

#include <algorithm>

#include "common/logging.hh"

namespace highlight
{

DenseTensor
reorder(const DenseTensor &tensor, const std::vector<std::string> &order)
{
    const TensorShape &shape = tensor.shape();
    if (order.size() != shape.rank())
        fatal(msgOf("reorder: order has ", order.size(), " names, tensor ",
                    shape.rank(), " dims"));

    std::vector<std::size_t> perm; // perm[i] = old position of new dim i
    std::vector<Dim> new_dims;
    for (const auto &name : order) {
        const std::size_t old = shape.indexOf(name);
        if (std::find(perm.begin(), perm.end(), old) != perm.end())
            fatal(msgOf("reorder: dimension ", name, " listed twice"));
        perm.push_back(old);
        new_dims.push_back(shape.dim(old));
    }

    DenseTensor out{TensorShape(new_dims)};
    const std::int64_t n = tensor.numel();
    std::vector<std::int64_t> new_index(shape.rank());
    for (std::int64_t flat = 0; flat < n; ++flat) {
        const auto old_index = shape.unflatten(flat);
        for (std::size_t i = 0; i < perm.size(); ++i)
            new_index[i] = old_index[perm[i]];
        out.set(new_index, tensor.atFlat(flat));
    }
    return out;
}

DenseTensor
flatten(const DenseTensor &tensor, const std::string &outer,
        const std::string &inner, const std::string &new_name)
{
    const TensorShape &shape = tensor.shape();
    const std::size_t io = shape.indexOf(outer);
    const std::size_t ii = shape.indexOf(inner);
    if (ii != io + 1)
        fatal(msgOf("flatten: dims ", outer, " and ", inner,
                    " are not adjacent (outer then inner)"));

    std::vector<Dim> new_dims;
    for (std::size_t i = 0; i < shape.rank(); ++i) {
        if (i == io) {
            new_dims.push_back(
                {new_name.empty() ? outer + inner : new_name,
                 shape.dim(io).extent * shape.dim(ii).extent});
        } else if (i == ii) {
            continue;
        } else {
            new_dims.push_back(shape.dim(i));
        }
    }
    // Row-major layout is unchanged by flattening adjacent dims.
    return DenseTensor(TensorShape(new_dims), tensor.data());
}

DenseTensor
partition(const DenseTensor &tensor, const std::string &name,
          std::int64_t block, const std::string &outer_name,
          const std::string &inner_name)
{
    const TensorShape &shape = tensor.shape();
    const std::size_t idx = shape.indexOf(name);
    const std::int64_t extent = shape.dim(idx).extent;
    if (block <= 0)
        fatal(msgOf("partition: non-positive block ", block));
    if (extent % block != 0)
        fatal(msgOf("partition: extent ", extent, " of dim ", name,
                    " not divisible by block ", block,
                    " (padTo it first)"));

    std::vector<Dim> new_dims;
    for (std::size_t i = 0; i < shape.rank(); ++i) {
        if (i == idx) {
            new_dims.push_back(
                {outer_name.empty() ? name + "1" : outer_name,
                 extent / block});
            new_dims.push_back(
                {inner_name.empty() ? name + "0" : inner_name, block});
        } else {
            new_dims.push_back(shape.dim(i));
        }
    }
    // Row-major layout is unchanged by splitting a dim in place.
    return DenseTensor(TensorShape(new_dims), tensor.data());
}

DenseTensor
padTo(const DenseTensor &tensor, const std::string &name,
      std::int64_t multiple)
{
    const TensorShape &shape = tensor.shape();
    const std::size_t idx = shape.indexOf(name);
    const std::int64_t extent = shape.dim(idx).extent;
    if (multiple <= 0)
        fatal(msgOf("padTo: non-positive multiple ", multiple));
    const std::int64_t target =
        (extent + multiple - 1) / multiple * multiple;
    if (target == extent)
        return tensor;

    std::vector<Dim> new_dims = shape.dims();
    new_dims[idx].extent = target;
    DenseTensor out{TensorShape(new_dims)};
    const std::int64_t n = tensor.numel();
    for (std::int64_t flat = 0; flat < n; ++flat) {
        const float v = tensor.atFlat(flat);
        if (v != 0.0f)
            out.set(shape.unflatten(flat), v);
    }
    return out;
}

} // namespace highlight
