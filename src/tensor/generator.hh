/**
 * @file
 * Synthetic tensor generators.
 *
 * The paper's synthetic workloads (Sec 7.1.2) use 1024x1024 matrices
 * with controlled sparsity degrees; the DNN suites need weight-like
 * value distributions so magnitude-based sparsification is meaningful.
 * These generators substitute for the ImageNet/WMT16-trained models we
 * cannot train here (DESIGN.md Sec 1.1, substitution 4).
 */

#ifndef HIGHLIGHT_TENSOR_GENERATOR_HH
#define HIGHLIGHT_TENSOR_GENERATOR_HH

#include <cstdint>

#include "common/random.hh"
#include "tensor/dense_tensor.hh"

namespace highlight
{

/**
 * Dense tensor with i.i.d. N(0, 1) values, no exact zeros (resampled).
 * Weight-like: magnitudes vary so top-G selection is non-degenerate.
 */
DenseTensor randomDense(const TensorShape &shape, Rng &rng);

/**
 * Unstructured sparse tensor: exactly round(sparsity * numel) entries
 * are zero, at uniformly random locations; the rest ~ N(0, 1).
 */
DenseTensor randomUnstructured(const TensorShape &shape, double sparsity,
                               Rng &rng);

/**
 * Matrix whose every row follows a G:H pattern on the column dimension:
 * within each block of h columns, exactly g entries are nonzero at
 * random positions. Used to make STC/S2TA-conformant operands.
 */
DenseTensor randomGhMatrix(std::int64_t rows, std::int64_t cols,
                           int g, int h, Rng &rng);

} // namespace highlight

#endif // HIGHLIGHT_TENSOR_GENERATOR_HH
