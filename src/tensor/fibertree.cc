#include "tensor/fibertree.hh"

#include <functional>
#include <sstream>

#include "common/logging.hh"

namespace highlight
{

Fibertree
Fibertree::fromDense(const DenseTensor &tensor)
{
    Fibertree tree;
    tree.shape_ = tensor.shape();
    const std::size_t nranks = tree.shape_.rank();
    if (nranks == 0)
        fatal("Fibertree::fromDense: rank-0 tensor");

    // rank_names_[0] is the leaf (innermost) dimension.
    for (std::size_t r = 0; r < nranks; ++r)
        tree.rank_names_.push_back(
            tree.shape_.dim(nranks - 1 - r).name);
    tree.ranks_.assign(nranks, {});

    // Recursive build: returns the fiber index at `rank` for the subtree
    // rooted at the given index prefix, or SIZE_MAX if empty.
    constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);
    std::function<std::size_t(std::vector<std::int64_t> &, std::size_t)>
        build = [&](std::vector<std::int64_t> &prefix,
                    std::size_t depth) -> std::size_t {
        // depth counts dims consumed from the outside; the rank index of
        // the fiber being built is nranks - 1 - depth.
        const std::size_t rank = nranks - 1 - depth;
        const std::int64_t extent =
            tree.shape_.dim(depth).extent;
        Fiber fiber;
        for (std::int64_t c = 0; c < extent; ++c) {
            prefix.push_back(c);
            if (rank == 0) {
                const float v = tensor.at(prefix);
                if (v != 0.0f) {
                    fiber.coords.push_back(c);
                    fiber.payloads.push_back(tree.values_.size());
                    tree.values_.push_back(v);
                }
            } else {
                const std::size_t child = build(prefix, depth + 1);
                if (child != kEmpty) {
                    fiber.coords.push_back(c);
                    fiber.payloads.push_back(child);
                }
            }
            prefix.pop_back();
        }
        if (fiber.coords.empty() && depth != 0)
            return kEmpty;
        tree.ranks_[rank].push_back(std::move(fiber));
        return tree.ranks_[rank].size() - 1;
    };

    std::vector<std::int64_t> prefix;
    build(prefix, 0);
    return tree;
}

const std::string &
Fibertree::rankName(std::size_t rank) const
{
    if (rank >= rank_names_.size())
        panic(msgOf("rankName: rank ", rank, " out of range"));
    return rank_names_[rank];
}

std::int64_t
Fibertree::rankShape(std::size_t rank) const
{
    if (rank >= rank_names_.size())
        panic(msgOf("rankShape: rank ", rank, " out of range"));
    return shape_.dim(shape_.rank() - 1 - rank).extent;
}

const std::vector<Fiber> &
Fibertree::fibersAt(std::size_t rank) const
{
    if (rank >= ranks_.size())
        panic(msgOf("fibersAt: rank ", rank, " out of range"));
    return ranks_[rank];
}

const Fiber &
Fibertree::root() const
{
    const auto &top = ranks_.back();
    if (top.empty())
        panic("Fibertree::root: empty tree");
    return top.back();
}

DenseTensor
Fibertree::toDense() const
{
    DenseTensor out(shape_);
    const std::size_t nranks = numRanks();
    std::function<void(const Fiber &, std::size_t,
                       std::vector<std::int64_t> &)>
        emit = [&](const Fiber &fiber, std::size_t rank,
                   std::vector<std::int64_t> &prefix) {
        for (std::size_t i = 0; i < fiber.coords.size(); ++i) {
            prefix.push_back(fiber.coords[i]);
            if (rank == 0) {
                out.set(prefix, values_[fiber.payloads[i]]);
            } else {
                emit(ranks_[rank - 1][fiber.payloads[i]], rank - 1,
                     prefix);
            }
            prefix.pop_back();
        }
    };
    std::vector<std::int64_t> prefix;
    if (!ranks_.back().empty())
        emit(root(), nranks - 1, prefix);
    return out;
}

std::vector<std::size_t>
Fibertree::occupancies(std::size_t rank) const
{
    std::vector<std::size_t> occ;
    for (const auto &fiber : fibersAt(rank))
        occ.push_back(fiber.occupancy());
    return occ;
}

std::string
Fibertree::str() const
{
    std::ostringstream oss;
    const std::size_t nranks = numRanks();
    std::function<void(const Fiber &, std::size_t, int)> emit =
        [&](const Fiber &fiber, std::size_t rank, int indent) {
        for (std::size_t i = 0; i < fiber.coords.size(); ++i) {
            oss << std::string(static_cast<std::size_t>(indent) * 2, ' ')
                << rankName(rank) << "=" << fiber.coords[i];
            if (rank == 0) {
                oss << " -> " << values_[fiber.payloads[i]] << "\n";
            } else {
                oss << "\n";
                emit(ranks_[rank - 1][fiber.payloads[i]], rank - 1,
                     indent + 1);
            }
        }
    };
    if (!ranks_.back().empty())
        emit(root(), nranks - 1, 0);
    return oss.str();
}

} // namespace highlight
