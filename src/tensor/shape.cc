#include "tensor/shape.hh"

#include <sstream>

#include "common/logging.hh"

namespace highlight
{

TensorShape::TensorShape(std::vector<Dim> dims) : dims_(std::move(dims))
{
    for (const auto &d : dims_) {
        if (d.extent <= 0)
            fatal(msgOf("TensorShape: dimension ", d.name,
                        " has non-positive extent ", d.extent));
        if (d.name.empty())
            fatal("TensorShape: dimension with empty name");
    }
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        for (std::size_t j = i + 1; j < dims_.size(); ++j) {
            if (dims_[i].name == dims_[j].name)
                fatal(msgOf("TensorShape: duplicate dimension name ",
                            dims_[i].name));
        }
    }
}

std::int64_t
TensorShape::numel() const
{
    std::int64_t n = 1;
    for (const auto &d : dims_)
        n *= d.extent;
    return n;
}

const Dim &
TensorShape::dim(std::size_t i) const
{
    if (i >= dims_.size())
        panic(msgOf("TensorShape::dim: index ", i, " out of range ",
                    dims_.size()));
    return dims_[i];
}

std::size_t
TensorShape::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (dims_[i].name == name)
            return i;
    }
    fatal(msgOf("TensorShape: no dimension named ", name, " in ", str()));
}

bool
TensorShape::has(const std::string &name) const
{
    for (const auto &d : dims_) {
        if (d.name == name)
            return true;
    }
    return false;
}

std::vector<std::int64_t>
TensorShape::strides() const
{
    std::vector<std::int64_t> s(dims_.size(), 1);
    for (std::size_t i = dims_.size(); i-- > 1;)
        s[i - 1] = s[i] * dims_[i].extent;
    return s;
}

std::int64_t
TensorShape::flatIndex(const std::vector<std::int64_t> &index) const
{
    if (index.size() != dims_.size())
        panic(msgOf("flatIndex: index rank ", index.size(),
                    " != shape rank ", dims_.size()));
    const auto s = strides();
    std::int64_t flat = 0;
    for (std::size_t i = 0; i < index.size(); ++i) {
        if (index[i] < 0 || index[i] >= dims_[i].extent)
            panic(msgOf("flatIndex: coordinate ", index[i],
                        " out of bounds for dim ", dims_[i].name, " (extent ",
                        dims_[i].extent, ")"));
        flat += index[i] * s[i];
    }
    return flat;
}

std::vector<std::int64_t>
TensorShape::unflatten(std::int64_t flat) const
{
    if (flat < 0 || flat >= numel())
        panic(msgOf("unflatten: flat index ", flat, " out of range ",
                    numel()));
    std::vector<std::int64_t> index(dims_.size(), 0);
    const auto s = strides();
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        index[i] = flat / s[i];
        flat %= s[i];
    }
    return index;
}

std::string
TensorShape::str() const
{
    std::ostringstream oss;
    oss << "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            oss << ", ";
        oss << dims_[i].name << ":" << dims_[i].extent;
    }
    oss << "]";
    return oss.str();
}

} // namespace highlight
