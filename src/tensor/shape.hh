/**
 * @file
 * Tensor shapes with named dimensions.
 *
 * The fibertree-based sparsity specification (paper Sec 3) talks about
 * ranks by dimension name (C, R, S, ...), so shapes carry names along
 * with extents. Names are single identifiers; transformed ranks use the
 * paper's convention of appending digits ("C1", "C0") or concatenating
 * ("RS").
 */

#ifndef HIGHLIGHT_TENSOR_SHAPE_HH
#define HIGHLIGHT_TENSOR_SHAPE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace highlight
{

/** One named dimension of a tensor. */
struct Dim
{
    std::string name;
    std::int64_t extent = 0;

    bool
    operator==(const Dim &other) const
    {
        return name == other.name && extent == other.extent;
    }
};

/**
 * An ordered list of named dimensions, outermost first.
 *
 * The order of dimensions is the rank order of the corresponding
 * fibertree: shape [C, R, S] puts C at the top rank and S at Rank0.
 */
class TensorShape
{
  public:
    TensorShape() = default;

    /** Construct from (name, extent) pairs, outermost dimension first. */
    explicit TensorShape(std::vector<Dim> dims);

    /** Number of dimensions. */
    std::size_t rank() const { return dims_.size(); }

    /** Total number of elements (product of extents). */
    std::int64_t numel() const;

    /** Dimension by position (0 = outermost). */
    const Dim &dim(std::size_t i) const;

    /** Position of the dimension with the given name; fatal if absent. */
    std::size_t indexOf(const std::string &name) const;

    /** True if a dimension with the given name exists. */
    bool has(const std::string &name) const;

    /** All dimensions, outermost first. */
    const std::vector<Dim> &dims() const { return dims_; }

    /**
     * Row-major strides (in elements) matching the dimension order:
     * the innermost (last) dimension has stride 1.
     */
    std::vector<std::int64_t> strides() const;

    /** Flat row-major offset of the given multi-index. */
    std::int64_t flatIndex(const std::vector<std::int64_t> &index) const;

    /** Multi-index of the given flat row-major offset. */
    std::vector<std::int64_t> unflatten(std::int64_t flat) const;

    /** Human-readable form, e.g. "[C:4, R:3, S:3]". */
    std::string str() const;

    bool operator==(const TensorShape &other) const
    {
        return dims_ == other.dims_;
    }

  private:
    std::vector<Dim> dims_;
};

} // namespace highlight

#endif // HIGHLIGHT_TENSOR_SHAPE_HH
