#include "tensor/generator.hh"

#include <cmath>

#include "common/logging.hh"

namespace highlight
{

namespace
{

/** N(0,1) sample guaranteed nonzero (exact zeros are "absent"). */
float
nonzeroNormal(Rng &rng)
{
    float v = 0.0f;
    do {
        v = static_cast<float>(rng.normal());
    } while (v == 0.0f);
    return v;
}

} // namespace

DenseTensor
randomDense(const TensorShape &shape, Rng &rng)
{
    DenseTensor t(shape);
    for (auto &v : t.data())
        v = nonzeroNormal(rng);
    return t;
}

DenseTensor
randomUnstructured(const TensorShape &shape, double sparsity, Rng &rng)
{
    if (sparsity < 0.0 || sparsity > 1.0)
        fatal(msgOf("randomUnstructured: sparsity ", sparsity,
                    " outside [0, 1]"));
    DenseTensor t = randomDense(shape, rng);
    const auto n = static_cast<std::size_t>(t.numel());
    const auto zeros = static_cast<std::size_t>(
        std::llround(sparsity * static_cast<double>(n)));
    for (std::size_t idx : rng.sampleIndices(n, zeros))
        t.data()[idx] = 0.0f;
    return t;
}

DenseTensor
randomGhMatrix(std::int64_t rows, std::int64_t cols, int g, int h,
               Rng &rng)
{
    if (g <= 0 || h <= 0 || g > h)
        fatal(msgOf("randomGhMatrix: bad G:H = ", g, ":", h));
    if (cols % h != 0)
        fatal(msgOf("randomGhMatrix: cols ", cols,
                    " not divisible by H ", h));
    DenseTensor t = DenseTensor::matrix(rows, cols);
    for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t b = 0; b < cols / h; ++b) {
            for (std::size_t off : rng.sampleIndices(
                     static_cast<std::size_t>(h),
                     static_cast<std::size_t>(g))) {
                t.set2(r, b * h + static_cast<std::int64_t>(off),
                       nonzeroNormal(rng));
            }
        }
    }
    return t;
}

} // namespace highlight
