/**
 * @file
 * Dense row-major tensor of float values.
 *
 * This is the uncompressed representation every other subsystem starts
 * from: sparsifiers zero out entries in place, compression formats pack
 * the nonzeros, and the micro-simulator checks its outputs against dense
 * reference GEMMs computed on these.
 */

#ifndef HIGHLIGHT_TENSOR_DENSE_TENSOR_HH
#define HIGHLIGHT_TENSOR_DENSE_TENSOR_HH

#include <cstdint>
#include <vector>

#include "tensor/shape.hh"

namespace highlight
{

/**
 * A dense tensor with named dimensions and row-major float storage.
 *
 * Zero values are semantically "empty" for all sparsity purposes: the
 * fibertree view and the compression formats treat exact 0.0f as absent.
 */
class DenseTensor
{
  public:
    DenseTensor() = default;

    /** Construct a zero-initialized tensor with the given shape. */
    explicit DenseTensor(TensorShape shape);

    /** Construct from shape and explicit row-major data. */
    DenseTensor(TensorShape shape, std::vector<float> data);

    /** Convenience: 2-D matrix with dims named "M" (rows), "K" (cols). */
    static DenseTensor matrix(std::int64_t rows, std::int64_t cols);

    const TensorShape &shape() const { return shape_; }
    std::int64_t numel() const { return shape_.numel(); }

    /** Element access by multi-index (outermost dimension first). */
    float at(const std::vector<std::int64_t> &index) const;
    void set(const std::vector<std::int64_t> &index, float value);

    /** Element access by flat row-major offset. */
    float atFlat(std::int64_t flat) const;
    void setFlat(std::int64_t flat, float value);

    /**
     * Unchecked flat access for hot loops (the micro-simulator's
     * output accumulation): the caller guarantees 0 <= flat < numel().
     */
    float atFlatUnchecked(std::int64_t flat) const
    {
        return data_[static_cast<std::size_t>(flat)];
    }
    void setFlatUnchecked(std::int64_t flat, float value)
    {
        data_[static_cast<std::size_t>(flat)] = value;
    }

    /** 2-D convenience accessors (valid only for rank-2 tensors). */
    float at2(std::int64_t row, std::int64_t col) const;
    void set2(std::int64_t row, std::int64_t col, float value);

    /** Raw row-major storage. */
    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /** Number of exact-zero entries. */
    std::int64_t countZeros() const;

    /** Number of nonzero entries. */
    std::int64_t countNonzeros() const;

    /** Fraction of zero entries (paper: "sparsity"). */
    double sparsity() const;

    /** Fraction of nonzero entries (paper: density = 1 - sparsity). */
    double density() const;

    /** True if shapes match and all elements are exactly equal. */
    bool equals(const DenseTensor &other) const;

    /** Max |a - b| over all elements; fatal if shapes differ. */
    double maxAbsDiff(const DenseTensor &other) const;

  private:
    TensorShape shape_;
    std::vector<float> data_;
};

/**
 * Reference dense GEMM: C = A * B with A of shape (M x K) and B of shape
 * (K x N). Used as ground truth by the micro-simulator tests.
 */
DenseTensor referenceGemm(const DenseTensor &a, const DenseTensor &b);

} // namespace highlight

#endif // HIGHLIGHT_TENSOR_DENSE_TENSOR_HH
