#include "tensor/dense_tensor.hh"

#include <cmath>

#include "common/logging.hh"

namespace highlight
{

DenseTensor::DenseTensor(TensorShape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), 0.0f)
{
}

DenseTensor::DenseTensor(TensorShape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    if (static_cast<std::int64_t>(data_.size()) != shape_.numel())
        fatal(msgOf("DenseTensor: data size ", data_.size(),
                    " != shape numel ", shape_.numel()));
}

DenseTensor
DenseTensor::matrix(std::int64_t rows, std::int64_t cols)
{
    return DenseTensor(TensorShape({{"M", rows}, {"K", cols}}));
}

float
DenseTensor::at(const std::vector<std::int64_t> &index) const
{
    return data_[static_cast<std::size_t>(shape_.flatIndex(index))];
}

void
DenseTensor::set(const std::vector<std::int64_t> &index, float value)
{
    data_[static_cast<std::size_t>(shape_.flatIndex(index))] = value;
}

float
DenseTensor::atFlat(std::int64_t flat) const
{
    if (flat < 0 || flat >= numel())
        panic(msgOf("atFlat: index ", flat, " out of range ", numel()));
    return data_[static_cast<std::size_t>(flat)];
}

void
DenseTensor::setFlat(std::int64_t flat, float value)
{
    if (flat < 0 || flat >= numel())
        panic(msgOf("setFlat: index ", flat, " out of range ", numel()));
    data_[static_cast<std::size_t>(flat)] = value;
}

float
DenseTensor::at2(std::int64_t row, std::int64_t col) const
{
    if (shape_.rank() != 2)
        panic("at2: tensor is not rank-2");
    return data_[static_cast<std::size_t>(
        row * shape_.dim(1).extent + col)];
}

void
DenseTensor::set2(std::int64_t row, std::int64_t col, float value)
{
    if (shape_.rank() != 2)
        panic("set2: tensor is not rank-2");
    data_[static_cast<std::size_t>(row * shape_.dim(1).extent + col)] =
        value;
}

std::int64_t
DenseTensor::countZeros() const
{
    std::int64_t zeros = 0;
    for (float v : data_) {
        if (v == 0.0f)
            ++zeros;
    }
    return zeros;
}

std::int64_t
DenseTensor::countNonzeros() const
{
    return numel() - countZeros();
}

double
DenseTensor::sparsity() const
{
    if (numel() == 0)
        return 0.0;
    return static_cast<double>(countZeros()) /
           static_cast<double>(numel());
}

double
DenseTensor::density() const
{
    return 1.0 - sparsity();
}

bool
DenseTensor::equals(const DenseTensor &other) const
{
    return shape_ == other.shape_ && data_ == other.data_;
}

double
DenseTensor::maxAbsDiff(const DenseTensor &other) const
{
    if (!(shape_ == other.shape_))
        fatal("maxAbsDiff: shape mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        const double d = std::abs(static_cast<double>(data_[i]) -
                                  static_cast<double>(other.data_[i]));
        worst = std::max(worst, d);
    }
    return worst;
}

DenseTensor
referenceGemm(const DenseTensor &a, const DenseTensor &b)
{
    if (a.shape().rank() != 2 || b.shape().rank() != 2)
        fatal("referenceGemm: operands must be rank-2");
    const std::int64_t m = a.shape().dim(0).extent;
    const std::int64_t k = a.shape().dim(1).extent;
    const std::int64_t k2 = b.shape().dim(0).extent;
    const std::int64_t n = b.shape().dim(1).extent;
    if (k != k2)
        fatal(msgOf("referenceGemm: inner dims differ: ", k, " vs ", k2));

    DenseTensor c(TensorShape({{"M", m}, {"N", n}}));
    // Accumulate in double to keep the reference exact enough for
    // comparisons against the simulator's double accumulators.
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t kk = 0; kk < k; ++kk) {
                acc += static_cast<double>(a.at2(i, kk)) *
                       static_cast<double>(b.at2(kk, j));
            }
            c.set2(i, j, static_cast<float>(acc));
        }
    }
    return c;
}

} // namespace highlight
