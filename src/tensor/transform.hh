/**
 * @file
 * Content-preserving rank transforms (paper Sec 3.2).
 *
 * Sparsity pattern specifications may first reorder ranks, flatten
 * adjacent ranks into one, or partition one rank into an (outer, inner)
 * pair — e.g. the 2:4 pattern of Fig 4(b) is built by reordering to put
 * C innermost and then partitioning C into C1 and C0 with block size 4.
 * These transforms rearrange a DenseTensor's view without changing its
 * values.
 */

#ifndef HIGHLIGHT_TENSOR_TRANSFORM_HH
#define HIGHLIGHT_TENSOR_TRANSFORM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/dense_tensor.hh"

namespace highlight
{

/**
 * Reorder dimensions. `order` lists existing dimension names in the new
 * outermost-to-innermost order and must be a permutation of the
 * tensor's dimension names.
 */
DenseTensor reorder(const DenseTensor &tensor,
                    const std::vector<std::string> &order);

/**
 * Flatten two *adjacent* dimensions into one. The two dims must appear
 * consecutively (outer then inner); the result dimension is named
 * `outer+inner` (e.g. flattening R and S gives "RS") unless a name is
 * supplied.
 */
DenseTensor flatten(const DenseTensor &tensor, const std::string &outer,
                    const std::string &inner,
                    const std::string &new_name = "");

/**
 * Partition a dimension into (outer, inner) with the given inner block
 * size. The dimension extent must be divisible by block; the outer dim
 * is named `name+"1"` and the inner `name+"0"` by default (paper: C is
 * split into C1 and C0).
 */
DenseTensor partition(const DenseTensor &tensor, const std::string &name,
                      std::int64_t block,
                      const std::string &outer_name = "",
                      const std::string &inner_name = "");

/**
 * Pad a dimension up to a multiple of `multiple` with zeros. Real DNN
 * layers rarely have channel counts divisible by every H under study;
 * padding with zeros preserves GEMM results while making partitioning
 * legal (the hardware does the same with dummy lanes).
 */
DenseTensor padTo(const DenseTensor &tensor, const std::string &name,
                  std::int64_t multiple);

} // namespace highlight

#endif // HIGHLIGHT_TENSOR_TRANSFORM_HH
