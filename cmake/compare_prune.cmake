# Smoke-check that Pareto pruning / speculative shedding changes no
# reported output:
#
#   MODE=frontier (fig15): run the driver exhaustively and with
#     --prune (parallel and serial); all three --frontier-json dumps
#     must be byte-identical. The --prune runs additionally exit
#     nonzero unless pruning actually reclaimed work, so this test
#     also asserts "evaluations saved > 0".
#
#   MODE=json (fig17): run the driver with and without --prune; the
#     --json dumps (the tabulated, non-speculative degrees) must be
#     byte-identical — cancelAll() shedding the speculative tail may
#     not perturb the consumed results.
#
# Usage:
#   cmake -DDRIVER=<exe> -DOUTDIR=<dir> -DNAME=<tag> -DMODE=<mode>
#         -P compare_prune.cmake

foreach(var DRIVER OUTDIR NAME MODE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "compare_prune.cmake: -D${var}=... is required")
  endif()
endforeach()

function(run_driver outvar)
  execute_process(COMMAND "${DRIVER}" ${ARGN}
                  RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "${NAME}: '${DRIVER} ${ARGN}' failed (rc=${rc})")
  endif()
endfunction()

function(must_match a b what)
  foreach(f "${a}" "${b}")
    if(NOT EXISTS "${f}")
      message(FATAL_ERROR "${NAME}: missing dump ${f}")
    endif()
  endforeach()
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          "${a}" "${b}"
                  RESULT_VARIABLE differ)
  if(NOT differ EQUAL 0)
    message(FATAL_ERROR
            "${NAME}: ${what} dumps differ — pruning changed the "
            "reported output")
  endif()
endfunction()

if(MODE STREQUAL "frontier")
  set(exh "${OUTDIR}/${NAME}_exhaustive_frontier.json")
  set(par "${OUTDIR}/${NAME}_pruned_frontier.json")
  set(ser "${OUTDIR}/${NAME}_pruned_serial_frontier.json")
  run_driver(ignored --serial --frontier-json "${exh}")
  run_driver(ignored --prune --frontier-json "${par}")
  run_driver(ignored --serial --prune --frontier-json "${ser}")
  must_match("${exh}" "${par}" "exhaustive-vs-pruned frontier")
  must_match("${exh}" "${ser}" "exhaustive-vs-pruned-serial frontier")
elseif(MODE STREQUAL "json")
  set(plain "${OUTDIR}/${NAME}_plain.json")
  set(pruned "${OUTDIR}/${NAME}_pruned.json")
  run_driver(ignored --json "${plain}")
  run_driver(ignored --prune --json "${pruned}")
  must_match("${plain}" "${pruned}" "plain-vs-pruned result")
else()
  message(FATAL_ERROR "compare_prune.cmake: unknown MODE=${MODE}")
endif()
