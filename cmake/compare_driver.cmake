# Smoke-compare a figure driver: run it in parallel mode, with
# --serial, and pinned to --threads 2, then byte-compare the three
# --json dumps. The dumps print doubles at max_digits10, so identical
# files <=> bit-identical results — this is the ctest-level
# thread-count determinism check for every sweep driver.
#
# Usage:
#   cmake -DDRIVER=<exe> -DOUTDIR=<dir> -DNAME=<tag> -P compare_driver.cmake

foreach(var DRIVER OUTDIR NAME)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "compare_driver.cmake: -D${var}=... is required")
  endif()
endforeach()

set(par_json "${OUTDIR}/${NAME}_parallel.json")
set(ser_json "${OUTDIR}/${NAME}_serial.json")
set(two_json "${OUTDIR}/${NAME}_threads2.json")

execute_process(COMMAND "${DRIVER}" --json "${par_json}"
                RESULT_VARIABLE par_rc OUTPUT_QUIET)
if(NOT par_rc EQUAL 0)
  message(FATAL_ERROR "${NAME}: parallel run failed (rc=${par_rc})")
endif()

execute_process(COMMAND "${DRIVER}" --serial --json "${ser_json}"
                RESULT_VARIABLE ser_rc OUTPUT_QUIET)
if(NOT ser_rc EQUAL 0)
  message(FATAL_ERROR "${NAME}: --serial run failed (rc=${ser_rc})")
endif()

execute_process(COMMAND "${DRIVER}" --threads 2 --json "${two_json}"
                RESULT_VARIABLE two_rc OUTPUT_QUIET)
if(NOT two_rc EQUAL 0)
  message(FATAL_ERROR "${NAME}: --threads 2 run failed (rc=${two_rc})")
endif()

foreach(f "${par_json}" "${ser_json}" "${two_json}")
  if(NOT EXISTS "${f}")
    message(FATAL_ERROR "${NAME}: missing JSON dump ${f}")
  endif()
endforeach()

foreach(variant "${ser_json}" "${two_json}")
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          "${par_json}" "${variant}"
                  RESULT_VARIABLE differ)
  if(NOT differ EQUAL 0)
    message(FATAL_ERROR
            "${NAME}: ${variant} differs from the parallel dump — the "
            "bit-identical any-thread-count guarantee is broken")
  endif()
endforeach()
