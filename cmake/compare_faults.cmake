# Crash-injection smoke: prove the self-healing layers end-to-end by
# injecting real faults (HIGHLIGHT_FAILPOINTS) and asserting full
# recovery — not merely "no crash" but *byte-identical figures*:
#
#   crash:    both shards die at startup (exit 86); the supervisor's
#             retry relaunches them clean and the merged frontier must
#             byte-match the single-process reference, with no
#             .incomplete marker left behind.
#   hang:     both shards hang at startup; the --shard-timeout
#             watchdog SIGKILLs and the retry recovers, byte-identical.
#   torn:     every shard dies mid-cache-flush (crash-at-byte), the
#             on-disk state a power cut leaves. Retries recover
#             byte-identically; a warm rerun (no faults) must then be
#             a pure replay (hit rate=100.0% in every shard log) with
#             no orphaned .tmp.* or .lock litter next to the cache —
#             the locked orphan sweep cleaned up after the dead
#             writers.
#   degrade:  crash with --max-retries 0: the sweep must *degrade*,
#             not pretend — exit code 3, partial frontier written, an
#             <out>.incomplete sidecar naming the failed shards.
#   salvage:  the warm cache truncated to 65% (a real torn file, not a
#             synthetic fixture): the driver must warm-start from the
#             salvaged chunks (warns "salvaged", hit rate neither
#             absent nor 0.0%), quarantine the damaged file to
#             <cache>.corrupt.<pid>, and still emit the byte-identical
#             frontier.
#
# Usage:
#   cmake -DFIG15=<exe> -DSUPERVISOR=<exe>
#         -DOUTDIR=<dir> -DNAME=<tag> -P compare_faults.cmake

foreach(var FIG15 SUPERVISOR OUTDIR NAME)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "compare_faults.cmake: -D${var}=... is required")
  endif()
endforeach()

# Run `exe args...` with HIGHLIGHT_FAILPOINTS=`faults` (empty = no
# faults) and require exit code `expected_rc`.
function(run_fp faults expected_rc exe)
  execute_process(COMMAND ${CMAKE_COMMAND} -E env
                          "HIGHLIGHT_FAILPOINTS=${faults}"
                          "${exe}" ${ARGN}
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL expected_rc)
    message(FATAL_ERROR
            "${NAME}: '${exe} ${ARGN}' with faults '${faults}' exited "
            "${rc}, expected ${expected_rc}")
  endif()
endfunction()

function(must_match a b what)
  foreach(f "${a}" "${b}")
    if(NOT EXISTS "${f}")
      message(FATAL_ERROR "${NAME}: missing dump ${f}")
    endif()
  endforeach()
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          "${a}" "${b}"
                  RESULT_VARIABLE differ)
  if(NOT differ EQUAL 0)
    message(FATAL_ERROR
            "${NAME}: ${what} dumps differ — fault recovery changed "
            "the reported output")
  endif()
endfunction()

set(workroot "${OUTDIR}/${NAME}_faults")
file(REMOVE_RECURSE "${workroot}")
file(MAKE_DIRECTORY "${workroot}")
set(ref "${workroot}/ref_frontier.json")

run_fp("" 0 "${FIG15}" --serial --frontier-json "${ref}")

# ------------------------------------------------------ crash at startup
run_fp("shard-start:crash" 0 "${SUPERVISOR}"
       --driver "${FIG15}" --shards 2
       --cache-file "${workroot}/crash.evalcache"
       --workdir "${workroot}/crash"
       --out "${workroot}/merged_crash.json" --threads 1)
must_match("${ref}" "${workroot}/merged_crash.json"
           "reference vs crash-recovered frontier")
if(EXISTS "${workroot}/merged_crash.json.incomplete")
  message(FATAL_ERROR
          "${NAME}: fully recovered sweep left an .incomplete marker")
endif()

# ------------------------------------------------- hang, killed on time
run_fp("shard-start:hang" 0 "${SUPERVISOR}"
       --driver "${FIG15}" --shards 2
       --cache-file "${workroot}/hang.evalcache"
       --workdir "${workroot}/hang"
       --out "${workroot}/merged_hang.json" --threads 1
       --shard-timeout 2)
must_match("${ref}" "${workroot}/merged_hang.json"
           "reference vs watchdog-recovered frontier")

# --------------------------------------------- torn cache flush + retry
set(cache "${workroot}/torn.evalcache")
run_fp("evalcache-save-write:crash-at-byte:64" 0 "${SUPERVISOR}"
       --driver "${FIG15}" --shards 2
       --cache-file "${cache}" --workdir "${workroot}/torn_cold"
       --out "${workroot}/merged_torn.json" --threads 1)
must_match("${ref}" "${workroot}/merged_torn.json"
           "reference vs torn-write-recovered frontier")

run_fp("" 0 "${SUPERVISOR}"
       --driver "${FIG15}" --shards 2
       --cache-file "${cache}" --workdir "${workroot}/torn_warm"
       --out "${workroot}/merged_torn_warm.json" --threads 1)
must_match("${ref}" "${workroot}/merged_torn_warm.json"
           "reference vs post-fault warm frontier")
foreach(i RANGE 1)
  set(log "${workroot}/torn_warm/shard_${i}.log")
  if(NOT EXISTS "${log}")
    message(FATAL_ERROR "${NAME}: missing shard log ${log}")
  endif()
  file(READ "${log}" log_text)
  if(NOT log_text MATCHES "hit rate=100\\.0%")
    message(FATAL_ERROR
            "${NAME}: warm shard ${i} was not a pure replay — the "
            "crashed flushes lost cache entries (${log})")
  endif()
endforeach()
file(GLOB litter "${cache}.tmp.*" "${cache}.lock")
if(litter)
  message(FATAL_ERROR
          "${NAME}: crashed writers left litter next to the cache: "
          "${litter}")
endif()

# ------------------------------------------- graceful degradation at 0
run_fp("shard-start:crash" 3 "${SUPERVISOR}"
       --driver "${FIG15}" --shards 2
       --cache-file "${workroot}/degrade.evalcache"
       --workdir "${workroot}/degrade"
       --out "${workroot}/merged_degrade.json" --threads 1
       --max-retries 0)
if(NOT EXISTS "${workroot}/merged_degrade.json")
  message(FATAL_ERROR
          "${NAME}: degraded sweep did not write the partial frontier")
endif()
if(NOT EXISTS "${workroot}/merged_degrade.json.incomplete")
  message(FATAL_ERROR
          "${NAME}: degraded sweep did not flag the frontier as "
          "incomplete")
endif()
file(READ "${workroot}/merged_degrade.json.incomplete" marker)
if(NOT marker MATCHES "failed permanently")
  message(FATAL_ERROR
          "${NAME}: .incomplete marker does not name the failure: "
          "${marker}")
endif()

# -------------------------------------------- salvage of a torn cache
# Truncate the (healthy, warm) cache to 65%: the strict reader must
# reject it, the salvage path must warm-start from the intact chunks.
set(salv "${workroot}/salv.evalcache")
file(SIZE "${cache}" cache_size)
math(EXPR keep "${cache_size} * 65 / 100")
execute_process(COMMAND head -c ${keep} "${cache}"
                OUTPUT_FILE "${salv}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${NAME}: could not truncate ${cache}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E env HIGHLIGHT_FAILPOINTS=
                        "${FIG15}" --serial
                        --frontier-json "${workroot}/salv_frontier.json"
                        --cache-file "${salv}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE salv_out ERROR_VARIABLE salv_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "${NAME}: driver failed on a damaged cache (rc=${rc}) — "
          "salvage must degrade to a warm start, never to a failure")
endif()
must_match("${ref}" "${workroot}/salv_frontier.json"
           "reference vs salvage-warm-started frontier")
if(NOT salv_err MATCHES "salvaged")
  message(FATAL_ERROR
          "${NAME}: no salvage warning — the damaged cache was "
          "silently discarded instead of recovered:\n${salv_err}")
endif()
if(NOT salv_out MATCHES "hit rate=" OR salv_out MATCHES "hit rate=0\\.0%")
  message(FATAL_ERROR
          "${NAME}: salvaged entries produced no cache hits — the "
          "warm start recovered nothing:\n${salv_out}")
endif()
file(GLOB quarantine "${salv}.corrupt.*")
if(NOT quarantine)
  message(FATAL_ERROR
          "${NAME}: damaged cache was not quarantined for postmortem")
endif()
