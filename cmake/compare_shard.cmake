# Smoke-check the sharded multi-process sweep against the
# single-process run:
#
#   fig15: the sharded_sweep supervisor forks 2 fig15 shards sharing
#     one --cache-file; the merged frontier must be byte-identical to
#     the single-process --frontier-json dump. A second (warm)
#     supervisor run against the same cache file must byte-match
#     again AND report "hit rate=100.0%" in every shard log — which
#     also proves the shards' concurrent locked merge-on-flush
#     persisted the union (a clobbered cache would miss on whatever
#     the losing shard computed).
#
#   fig17: the two shards' --json dumps, re-assembled in shard order,
#     must byte-match the single-process dump (shardRange slices are
#     contiguous, so concatenation recovers the full array).
#
# Usage:
#   cmake -DFIG15=<exe> -DFIG17=<exe> -DSUPERVISOR=<exe>
#         -DOUTDIR=<dir> -DNAME=<tag> -P compare_shard.cmake

foreach(var FIG15 FIG17 SUPERVISOR OUTDIR NAME)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "compare_shard.cmake: -D${var}=... is required")
  endif()
endforeach()

function(run exe)
  execute_process(COMMAND "${exe}" ${ARGN}
                  RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${NAME}: '${exe} ${ARGN}' failed (rc=${rc})")
  endif()
endfunction()

function(must_match a b what)
  foreach(f "${a}" "${b}")
    if(NOT EXISTS "${f}")
      message(FATAL_ERROR "${NAME}: missing dump ${f}")
    endif()
  endforeach()
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          "${a}" "${b}"
                  RESULT_VARIABLE differ)
  if(NOT differ EQUAL 0)
    message(FATAL_ERROR
            "${NAME}: ${what} dumps differ — sharding changed the "
            "reported output")
  endif()
endfunction()

set(workroot "${OUTDIR}/${NAME}_shard")
file(REMOVE_RECURSE "${workroot}")
file(MAKE_DIRECTORY "${workroot}")
set(cache "${workroot}/sweep.evalcache")
set(ref "${workroot}/ref_frontier.json")

# ------------------------------------------------------ fig15 frontier
run("${FIG15}" --serial --frontier-json "${ref}")

run("${SUPERVISOR}" --driver "${FIG15}" --shards 2
    --cache-file "${cache}" --workdir "${workroot}/cold"
    --out "${workroot}/merged_cold.json" --threads 1)
must_match("${ref}" "${workroot}/merged_cold.json"
           "single-process vs cold 2-shard frontier")

# Warm rerun: same cache file, fresh shard dumps. Byte-identical
# again, and pure cache replay in every shard.
run("${SUPERVISOR}" --driver "${FIG15}" --shards 2
    --cache-file "${cache}" --workdir "${workroot}/warm"
    --out "${workroot}/merged_warm.json" --threads 1)
must_match("${ref}" "${workroot}/merged_warm.json"
           "single-process vs warm 2-shard frontier")
foreach(i RANGE 1)
  set(log "${workroot}/warm/shard_${i}.log")
  if(NOT EXISTS "${log}")
    message(FATAL_ERROR "${NAME}: missing shard log ${log}")
  endif()
  file(READ "${log}" log_text)
  if(NOT log_text MATCHES "hit rate=100\\.0%")
    message(FATAL_ERROR
            "${NAME}: warm shard ${i} was not a pure cache replay — "
            "a flush clobbered the shared cache file (${log})")
  endif()
endforeach()

# -------------------------------------------------- fig17 shard slices
set(f17_ref "${workroot}/fig17_ref.json")
set(f17_cache "${workroot}/fig17.evalcache")
run("${FIG17}" --json "${f17_ref}")
run("${FIG17}" --shard 0/2 --cache-file "${f17_cache}"
    --json "${workroot}/fig17_s0.json")
run("${FIG17}" --shard 1/2 --cache-file "${f17_cache}"
    --json "${workroot}/fig17_s1.json")

# Re-assemble: strip each shard dump's array brackets and the last
# entry's missing comma, join in shard order, re-wrap — byte-for-byte
# the full run's dump. (Raw-string surgery, not file(STRINGS): cmake
# list splitting mangles lines between "[" and "]" brackets.)
set(body "")
set(sep "")
foreach(i RANGE 1)
  file(READ "${workroot}/fig17_s${i}.json" text)
  string(REGEX REPLACE "^\\[\n" "" text "${text}")
  string(REGEX REPLACE "\\]\n$" "" text "${text}")
  string(REGEX REPLACE ",?\n$" "" text "${text}")
  if(NOT text STREQUAL "")
    set(body "${body}${sep}${text}")
    set(sep ",\n")
  endif()
endforeach()
file(WRITE "${workroot}/fig17_reassembled.json" "[\n${body}\n]\n")
must_match("${f17_ref}" "${workroot}/fig17_reassembled.json"
           "single-process vs re-assembled 2-shard fig17")
