# Smoke-check that the on-disk cache codec is invisible to results:
#
#   (a) fig15 --serial with a text cache is the reference frontier.
#   (b) the same sweep with a binary cache (cold) must emit a
#       byte-identical frontier — the codec may not change what the
#       sweep computes.
#   (c) a warm rerun against the binary cache must byte-match again
#       AND be a pure replay ("hit rate=100.0%"): every entry the
#       binary writer persisted decodes back bit-identical, or the
#       lookup would miss and re-evaluate.
#   (d) cache_convert migrates the text cache to a fresh binary file;
#       a warm run from the converted file must also replay at 100% —
#       the converter round-trips every entry exactly.
#
# Usage:
#   cmake -DFIG15=<exe> -DCONVERT=<exe> -DOUTDIR=<dir> -DNAME=<tag>
#         -P compare_format.cmake

foreach(var FIG15 CONVERT OUTDIR NAME)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "compare_format.cmake: -D${var}=... is required")
  endif()
endforeach()

# Runs `exe args... > log`, failing the test on a non-zero exit.
function(run log exe)
  execute_process(COMMAND "${exe}" ${ARGN}
                  RESULT_VARIABLE rc OUTPUT_FILE "${log}")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${NAME}: '${exe} ${ARGN}' failed (rc=${rc})")
  endif()
endfunction()

function(must_match a b what)
  foreach(f "${a}" "${b}")
    if(NOT EXISTS "${f}")
      message(FATAL_ERROR "${NAME}: missing dump ${f}")
    endif()
  endforeach()
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          "${a}" "${b}"
                  RESULT_VARIABLE differ)
  if(NOT differ EQUAL 0)
    message(FATAL_ERROR
            "${NAME}: ${what} dumps differ — the cache format changed "
            "the reported output")
  endif()
endfunction()

function(must_replay log what)
  file(READ "${log}" log_text)
  if(NOT log_text MATCHES "hit rate=100\\.0%")
    message(FATAL_ERROR
            "${NAME}: ${what} was not a pure cache replay — the codec "
            "did not round-trip every entry bit-identically (${log})")
  endif()
endfunction()

set(workroot "${OUTDIR}/${NAME}_format")
file(REMOVE_RECURSE "${workroot}")
file(MAKE_DIRECTORY "${workroot}")
set(text_cache "${workroot}/text.evalcache")
set(bin_cache "${workroot}/binary.evalcache")
set(ref "${workroot}/frontier_text.json")

# (a) reference: text-format cache, cold.
run("${workroot}/text_cold.log" "${FIG15}" --serial
    --cache-file "${text_cache}" --cache-format text
    --frontier-json "${ref}")

# (b) binary-format cache, cold: identical frontier.
run("${workroot}/bin_cold.log" "${FIG15}" --serial
    --cache-file "${bin_cache}" --cache-format binary
    --frontier-json "${workroot}/frontier_bin_cold.json")
must_match("${ref}" "${workroot}/frontier_bin_cold.json"
           "text-cache vs cold binary-cache frontier")

# (c) binary cache, warm: identical frontier from pure replay.
run("${workroot}/bin_warm.log" "${FIG15}" --serial
    --cache-file "${bin_cache}" --cache-format binary
    --frontier-json "${workroot}/frontier_bin_warm.json")
must_match("${ref}" "${workroot}/frontier_bin_warm.json"
           "text-cache vs warm binary-cache frontier")
must_replay("${workroot}/bin_warm.log" "warm binary-cache run")

# (d) text -> binary migration via the converter, then a warm run
# from the converted file.
set(converted "${workroot}/converted.evalcache")
run("${workroot}/convert.log" "${CONVERT}"
    --in "${text_cache}" --out "${converted}" --format binary)
run("${workroot}/conv_warm.log" "${FIG15}" --serial
    --cache-file "${converted}"
    --frontier-json "${workroot}/frontier_conv_warm.json")
must_match("${ref}" "${workroot}/frontier_conv_warm.json"
           "text-cache vs converted-cache frontier")
must_replay("${workroot}/conv_warm.log"
            "warm run from the converted cache")
