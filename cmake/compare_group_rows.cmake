# Smoke-compare row-group execution at the driver level: run the
# driver with a shared 4-row operand-B pass on a 2-thread pool and
# again ungrouped on a 1-thread pool, then byte-compare the full
# stdout of the two runs. The driver prints no timing, so identical
# stdout <=> identical tabulated results — the ctest-level check that
# --group-rows is purely a host-performance knob.
#
# Usage:
#   cmake -DDRIVER=<exe> -DOUTDIR=<dir> -DNAME=<tag> -P compare_group_rows.cmake

foreach(var DRIVER OUTDIR NAME)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "compare_group_rows.cmake: -D${var}=... is required")
  endif()
endforeach()

set(grouped_out "${OUTDIR}/${NAME}_grouped.txt")
set(serial_out "${OUTDIR}/${NAME}_serial.txt")

execute_process(COMMAND "${DRIVER}" --group-rows 4 --threads 2
                RESULT_VARIABLE grouped_rc
                OUTPUT_FILE "${grouped_out}")
if(NOT grouped_rc EQUAL 0)
  message(FATAL_ERROR
          "${NAME}: --group-rows 4 --threads 2 run failed (rc=${grouped_rc})")
endif()

execute_process(COMMAND "${DRIVER}" --group-rows 1 --serial
                RESULT_VARIABLE serial_rc
                OUTPUT_FILE "${serial_out}")
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR
          "${NAME}: --group-rows 1 --serial run failed (rc=${serial_rc})")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        "${grouped_out}" "${serial_out}"
                RESULT_VARIABLE differ)
if(NOT differ EQUAL 0)
  message(FATAL_ERROR
          "${NAME}: grouped stdout differs from ungrouped serial — "
          "row-group execution changed the simulated results")
endif()
