# Negative-compile proof that the thread-safety annotations are live.
#
# Run as a ctest (registered only for Clang builds):
#   cmake -DCOMPILER=<clang++> -DSRC_DIR=<repo>/src
#         -DPOSITIVE=<...>/positive.cc -DNEGATIVE=<...>/negative.cc
#         -P check_thread_annotations.cmake
#
# Two assertions:
#  1. positive.cc (disciplined locking) compiles cleanly under
#     -Werror=thread-safety — the harness itself works;
#  2. negative.cc (an unguarded write to a GUARDED_BY member) FAILS,
#     and the diagnostic mentions the thread-safety analysis — the
#     failure is the capability check, not some unrelated error.

foreach(var COMPILER SRC_DIR POSITIVE NEGATIVE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_thread_annotations: ${var} not set")
  endif()
endforeach()

set(FLAGS -std=c++17 -fsyntax-only -Wthread-safety
    -Werror=thread-safety -I${SRC_DIR})

execute_process(
  COMMAND ${COMPILER} ${FLAGS} ${POSITIVE}
  RESULT_VARIABLE positive_status
  ERROR_VARIABLE positive_err)
if(NOT positive_status EQUAL 0)
  message(FATAL_ERROR
          "positive.cc must compile under -Werror=thread-safety but "
          "failed — the check harness is broken:\n${positive_err}")
endif()

execute_process(
  COMMAND ${COMPILER} ${FLAGS} ${NEGATIVE}
  RESULT_VARIABLE negative_status
  ERROR_VARIABLE negative_err)
if(negative_status EQUAL 0)
  message(FATAL_ERROR
          "negative.cc compiled cleanly: the unguarded GUARDED_BY "
          "write was NOT rejected — the thread-safety annotations "
          "are inert")
endif()
if(NOT negative_err MATCHES "thread-safety|guarded_by|guarded by")
  message(FATAL_ERROR
          "negative.cc failed for the wrong reason (expected a "
          "thread-safety diagnostic):\n${negative_err}")
endif()

message(STATUS "thread-safety annotations verified live: unguarded "
               "access rejected, disciplined access accepted")
